package bench

import (
	"fmt"
	"math/rand"
	"reflect"
	"time"

	"pqgram/internal/forest"
	"pqgram/internal/gen"
	"pqgram/internal/obs"
	"pqgram/internal/profile"
)

// PruningPoint is one threshold of the candidate-pruning experiment:
// wall-clock and planner-counter measurements of the same lookup batch on
// the exhaustive and the pruned path. Per-lookup quantities are averages
// over the batch.
type PruningPoint struct {
	Tau                float64 `json:"tau"`
	Matches            int     `json:"matches"`              // per lookup
	ExhaustiveNsPerOp  float64 `json:"exhaustive_ns_per_op"` //
	PrunedNsPerOp      float64 `json:"pruned_ns_per_op"`     //
	Speedup            float64 `json:"speedup"`              // exhaustive / pruned
	ExhaustiveExamined float64 `json:"exhaustive_examined"`  // candidates per lookup
	PrunedExamined     float64 `json:"pruned_examined"`      // candidates per lookup
	PrunedSizeKills    float64 `json:"pruned_size_kills"`    // per lookup
	PrunedAbandonKills float64 `json:"pruned_abandon_kills"` // per lookup

	// TracedCounters are the exact work totals of one fully-traced pruned
	// pass over the query batch (tracer sampling every lookup), keyed by
	// registry counter name. The pass fails the experiment if the span
	// attribution disagrees with the registry deltas.
	TracedCounters map[string]int64 `json:"traced_counters,omitempty"`
}

// Pruning regenerates the candidate-pruning experiment: an XMark-shaped
// collection is queried with perturbed members across a threshold sweep,
// once with the exhaustive planner and once with the pruned one. Both
// paths must return identical results (the run errors out otherwise); the
// recorded quantities are the lookup time, the number of candidate trees
// examined, and the planner's kill counters, per threshold. This is the
// experiment behind EXPERIMENTS.md §"Candidate pruning" and the pruning
// section of the BENCH_pr4.json report.
func Pruning(numDocs, totalNodes, queries, iters int, taus []float64) (*Result, []PruningPoint, error) {
	if queries < 1 {
		queries = 1
	}
	if iters < 1 {
		iters = 1
	}
	docs := gen.XMarkForest(baseSeed+53, numDocs, totalNodes)
	f := forest.New(P33)
	batch := make([]forest.Doc, len(docs))
	for i, d := range docs {
		batch[i] = forest.Doc{ID: fmt.Sprintf("doc-%04d", i), Tree: d}
	}
	if err := f.AddAll(batch, 0); err != nil {
		return nil, nil, err
	}
	col := obs.NewCollector()
	f.SetCollector(col)
	defer f.SetCollector(nil)
	defer f.SetPlanMode(forest.PlanAuto)

	mkQueries := func(seed int64) ([]profile.Index, error) {
		rng := rand.New(rand.NewSource(seed))
		out := make([]profile.Index, queries)
		for i := range out {
			q, _, err := gen.Perturb(rng, docs[(i*len(docs))/queries], 8, gen.DefaultMix)
			if err != nil {
				return nil, err
			}
			out[i] = profile.BuildIndex(q, P33)
		}
		return out, nil
	}
	qs, err := mkQueries(baseSeed + 59)
	if err != nil {
		return nil, nil, err
	}
	// The warm-up set is drawn from a distinct seed: warming with the very
	// queries that are then measured would let pooled scratch and cache
	// state tuned to those exact queries flatter the measured path, and the
	// smoke guard would compare a cold path against a pre-chewed one.
	warm, err := mkQueries(baseSeed + 61)
	if err != nil {
		return nil, nil, err
	}
	ops := float64(iters * queries)

	run := func(mode forest.PlanMode, tau float64) (float64, map[string]int64, [][]forest.Match) {
		f.SetPlanMode(mode)
		for _, q := range warm {
			f.LookupIndex(q, tau)
		}
		before := col.Snapshot()
		var res [][]forest.Match
		t0 := time.Now()
		for it := 0; it < iters; it++ {
			res = res[:0]
			for _, q := range qs {
				res = append(res, f.LookupIndex(q, tau))
			}
		}
		elapsed := time.Since(t0)
		return float64(elapsed.Nanoseconds()) / ops, col.Snapshot().CounterDeltas(before), res
	}

	res := &Result{
		Title: "Candidate pruning: threshold-aware planner vs exhaustive lookup",
		Comment: fmt.Sprintf("%d XMark-shaped docs (~%d total nodes), %d perturbed-member queries x %d iterations per point",
			len(docs), totalNodes, queries, iters),
		Header: []string{"exhaustive", "pruned", "speedup", "cand(ex)", "cand(pr)", "size-kills", "abandons", "matches"},
	}
	points := make([]PruningPoint, 0, len(taus))
	for _, tau := range taus {
		exNS, exD, exRes := run(forest.PlanExhaustive, tau)
		prNS, prD, prRes := run(forest.PlanPruned, tau)
		if !reflect.DeepEqual(exRes, prRes) {
			return nil, nil, fmt.Errorf("pruned and exhaustive lookups disagree at tau=%g", tau)
		}
		matches := 0
		for _, r := range exRes {
			matches += len(r)
		}
		f.SetPlanMode(forest.PlanPruned)
		traced, err := tracedCounters(col, len(qs), func() {
			for _, q := range qs {
				f.LookupIndex(q, tau)
			}
		}, map[string]string{
			"candidates":     "forest_lookup_candidates_examined",
			"pruned_size":    "forest_lookup_pruned_size",
			"pruned_abandon": "forest_lookup_pruned_abandon",
		})
		if err != nil {
			return nil, nil, fmt.Errorf("tau=%g: %w", tau, err)
		}
		pt := PruningPoint{
			Tau:                tau,
			Matches:            matches / len(exRes),
			ExhaustiveNsPerOp:  exNS,
			PrunedNsPerOp:      prNS,
			Speedup:            exNS / prNS,
			ExhaustiveExamined: float64(exD["forest_lookup_candidates_examined"]) / ops,
			PrunedExamined:     float64(prD["forest_lookup_candidates_examined"]) / ops,
			PrunedSizeKills:    float64(prD["forest_lookup_pruned_size"]) / ops,
			PrunedAbandonKills: float64(prD["forest_lookup_pruned_abandon"]) / ops,
			TracedCounters:     traced,
		}
		points = append(points, pt)
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("tau=%.2f", tau),
			Values: []string{
				ms(time.Duration(exNS)), ms(time.Duration(prNS)),
				fmt.Sprintf("%.1fx", pt.Speedup),
				fmt.Sprintf("%.0f", pt.ExhaustiveExamined),
				fmt.Sprintf("%.0f", pt.PrunedExamined),
				fmt.Sprintf("%.0f", pt.PrunedSizeKills),
				fmt.Sprintf("%.0f", pt.PrunedAbandonKills),
				fmt.Sprintf("%d", pt.Matches),
			},
		})
	}
	if cross := PruningCrossover(points); cross > 0 {
		res.Comment += fmt.Sprintf("; pruned path faster up to tau=%.2f", cross)
	}
	return res, points, nil
}

// PruningCrossover returns the largest measured tau for which the pruned
// path was at least as fast as the exhaustive one, or 0 if it never was.
func PruningCrossover(points []PruningPoint) float64 {
	cross := 0.0
	for _, p := range points {
		if p.Speedup >= 1 && p.Tau > cross {
			cross = p.Tau
		}
	}
	return cross
}

// DefaultPruningTaus is the threshold sweep of the pruning experiment.
var DefaultPruningTaus = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}

// PruningSmoke is the CI guard: a reduced sweep that fails if the pruned
// path is ever slower than the exhaustive one by more than maxRatio at any
// threshold, or if it ever examines more candidates. It exists so a
// planner regression (a bound that stops pruning, a scratch pool that
// stops pooling) breaks `make check` instead of silently rotting.
func PruningSmoke(maxRatio float64) (*Result, error) {
	res, points, err := Pruning(96, 64000, 4, 3, DefaultPruningTaus)
	if err != nil {
		return nil, err
	}
	for _, p := range points {
		if p.PrunedNsPerOp > maxRatio*p.ExhaustiveNsPerOp {
			return res, fmt.Errorf("pruned lookup %.1fx slower than exhaustive at tau=%.2f (limit %.1fx)",
				p.PrunedNsPerOp/p.ExhaustiveNsPerOp, p.Tau, maxRatio)
		}
		if p.PrunedExamined > p.ExhaustiveExamined {
			return res, fmt.Errorf("pruned lookup examined %.0f candidates, exhaustive %.0f at tau=%.2f",
				p.PrunedExamined, p.ExhaustiveExamined, p.Tau)
		}
	}
	return res, nil
}
