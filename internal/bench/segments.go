package bench

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"time"

	"pqgram/internal/forest"
	"pqgram/internal/fsio"
	"pqgram/internal/gen"
	"pqgram/internal/obs"
	"pqgram/internal/profile"
	"pqgram/internal/store"
)

// SegmentsPoint is one configuration of the out-of-core experiment: the
// same corpus and query batch, with the collection spread over a varying
// number of on-disk segments. flush_every = 0 is the all-in-RAM baseline
// every other row is compared against — the lookup results themselves are
// required to be byte-identical across the sweep.
type SegmentsPoint struct {
	FlushEvery    int     `json:"flush_every"`    // docs per segment (0 = all in RAM)
	Segments      int     `json:"segments"`       // live segment files
	SegmentBytes  int64   `json:"segment_bytes"`  // on-disk bytes across segments
	ResidentDocs  int     `json:"resident_docs"`  // memtable population after building
	ResidentGrams int     `json:"resident_grams"` // pq-grams held in RAM postings
	LookupNsPerOp float64 `json:"lookup_ns_per_op"`
	LookupP50Ns   float64 `json:"lookup_p50_ns"`
	LookupP95Ns   float64 `json:"lookup_p95_ns"`
	Candidates    float64 `json:"candidates_examined"` // per lookup
	BloomChecks   float64 `json:"bloom_checks"`        // per lookup
	BloomSkips    float64 `json:"bloom_skips"`         // per lookup
	BloomSkipRate float64 `json:"bloom_skip_rate"`     // skips / checks
	SegsProbed    float64 `json:"segments_probed"`     // per lookup
	Postings      float64 `json:"postings_scanned"`    // segment postings per lookup
}

// Segments regenerates the out-of-core lookup experiment: an XMark-shaped
// collection is built once per configuration — fully resident, then spread
// over progressively more immutable segments — and queried with the same
// perturbed-member batch. Results must be byte-identical to the in-RAM
// baseline at every point (the run errors out otherwise); the recorded
// quantities are resident index size, lookup latency (mean and p95),
// candidates examined, and the segment tier's bloom-filter and probe
// counters. This is the experiment behind EXPERIMENTS.md §"Out-of-core
// lookups" and the segments section of the BENCH_pr9.json report.
func Segments(numDocs, totalNodes, queries, iters int, tau float64, flushEvery []int) (*Result, []SegmentsPoint, error) {
	if queries < 1 {
		queries = 1
	}
	if iters < 1 {
		iters = 1
	}
	docs := gen.XMarkForest(baseSeed+67, numDocs, totalNodes)
	batch := make([]forest.Doc, len(docs))
	for i, d := range docs {
		batch[i] = forest.Doc{ID: fmt.Sprintf("doc-%04d", i), Tree: d}
	}
	rng := rand.New(rand.NewSource(baseSeed + 71))
	qs := make([]profile.Index, queries)
	for i := range qs {
		q, _, err := gen.Perturb(rng, docs[(i*len(docs))/queries], 8, gen.DefaultMix)
		if err != nil {
			return nil, nil, err
		}
		qs[i] = profile.BuildIndex(q, P33)
	}

	res := &Result{
		Title: "Out-of-core lookups: memtable + immutable segments vs all in RAM",
		Comment: fmt.Sprintf("%d XMark-shaped docs (~%d total nodes), %d perturbed-member queries x %d iterations per point, tau=%.2f",
			len(docs), totalNodes, queries, iters, tau),
		Header: []string{"segments", "resident", "grams", "seg bytes", "lookup", "p95", "cand", "bloom skip", "probes"},
	}
	var baseline [][]forest.Match
	points := make([]SegmentsPoint, 0, len(flushEvery))
	for _, fe := range flushEvery {
		pt, results, err := segmentsPoint(batch, qs, iters, tau, fe)
		if err != nil {
			return nil, nil, fmt.Errorf("flush_every=%d: %w", fe, err)
		}
		if baseline == nil {
			baseline = results
		} else if !reflect.DeepEqual(results, baseline) {
			return nil, nil, fmt.Errorf("flush_every=%d: lookup results diverge from the in-RAM baseline", fe)
		}
		points = append(points, pt)
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("flush=%d", fe),
			Values: []string{
				fmt.Sprintf("%d", pt.Segments),
				fmt.Sprintf("%d", pt.ResidentDocs),
				fmt.Sprintf("%d", pt.ResidentGrams),
				fmt.Sprintf("%d", pt.SegmentBytes),
				ms(time.Duration(pt.LookupNsPerOp)),
				ms(time.Duration(pt.LookupP95Ns)),
				fmt.Sprintf("%.0f", pt.Candidates),
				fmt.Sprintf("%.0f%%", pt.BloomSkipRate*100),
				fmt.Sprintf("%.1f", pt.SegsProbed),
			},
		})
	}
	return res, points, nil
}

// segmentsPoint builds one segmented store (flushEvery docs per segment;
// 0 keeps everything resident) and measures the query batch against it.
func segmentsPoint(batch []forest.Doc, qs []profile.Index, iters int, tau float64, flushEvery int) (SegmentsPoint, [][]forest.Match, error) {
	var pt SegmentsPoint
	s, err := store.CreateSegmentedFS(fsio.NewMemFS(), "bench.pqg", P33)
	if err != nil {
		return pt, nil, err
	}
	defer s.Close()
	if flushEvery <= 0 {
		if err := s.AddAll(batch, 0); err != nil {
			return pt, nil, err
		}
	} else {
		for lo := 0; lo < len(batch); lo += flushEvery {
			hi := lo + flushEvery
			if hi > len(batch) {
				hi = len(batch)
			}
			if err := s.AddAll(batch[lo:hi], 0); err != nil {
				return pt, nil, err
			}
			if err := s.Flush(); err != nil {
				return pt, nil, err
			}
		}
	}
	f := s.Forest()
	col := obs.NewCollector()
	s.SetCollector(col)

	// Warm up (block cache, scratch pools), then measure each lookup
	// individually so the batch yields a p95, not just a mean.
	for _, q := range qs {
		f.LookupIndex(q, tau)
	}
	before := col.Snapshot()
	durs := make([]float64, 0, iters*len(qs))
	var results [][]forest.Match
	for it := 0; it < iters; it++ {
		results = results[:0]
		for _, q := range qs {
			t0 := time.Now()
			r := f.LookupIndex(q, tau)
			durs = append(durs, float64(time.Since(t0).Nanoseconds()))
			results = append(results, r)
		}
	}
	d := col.Snapshot().CounterDeltas(before)
	ops := float64(len(durs))
	var sum float64
	for _, v := range durs {
		sum += v
	}
	sort.Float64s(durs)
	st := s.Stats()
	pt = SegmentsPoint{
		FlushEvery:    flushEvery,
		Segments:      st.Segments,
		SegmentBytes:  st.SegmentBytes,
		ResidentDocs:  st.ResidentDocs,
		ResidentGrams: f.ResidentSize(),
		LookupNsPerOp: sum / ops,
		LookupP50Ns:   durs[len(durs)/2],
		LookupP95Ns:   durs[(len(durs)*95)/100],
		Candidates:    float64(d["forest_lookup_candidates_examined"]) / ops,
		BloomChecks:   float64(d["forest_bloom_checks"]) / ops,
		BloomSkips:    float64(d["forest_bloom_skips"]) / ops,
		SegsProbed:    float64(d["forest_tier_segments_probed"]) / ops,
		Postings:      float64(d["forest_tier_postings_scanned"]) / ops,
	}
	if pt.BloomChecks > 0 {
		pt.BloomSkipRate = pt.BloomSkips / pt.BloomChecks
	}
	return pt, append([][]forest.Match(nil), results...), nil
}

// DefaultSegmentsFlushEvery is the sweep of the segments experiment: the
// in-RAM baseline, one big segment, and progressively finer spreads.
var DefaultSegmentsFlushEvery = []int{0, 256, 64, 16, 4}

// SegmentsSmoke is the CI guard for the out-of-core engine: a 256-doc
// corpus spread over 4 segments must (a) keep answering exactly like the
// in-RAM baseline — Segments errors out otherwise — (b) actually skip
// segment probes through the bloom filters, and (c) stay within maxRatio
// of the in-RAM lookup latency. It exists so a tier regression (a filter
// that stops filtering, a merge that re-reads every block) breaks
// `make check` instead of silently rotting. The latency gate compares
// medians, not means: sub-millisecond samples on a shared CI box swing
// several-fold under scheduler noise, and the regressions this guard is
// for (the block-cache miss storm it was written against was 21×) move
// the median, not just the tail.
func SegmentsSmoke(maxRatio float64) (*Result, error) {
	res, points, err := Segments(256, 64000, 4, 8, 0.5, []int{0, 64})
	if err != nil {
		return nil, err
	}
	ram, seg := points[0], points[1]
	if seg.Segments != 4 {
		return res, fmt.Errorf("expected 4 segments from 256 docs at flush_every=64, got %d", seg.Segments)
	}
	if seg.BloomSkipRate <= 0 {
		return res, fmt.Errorf("bloom filters skipped nothing (%.0f checks, %.0f skips)", seg.BloomChecks, seg.BloomSkips)
	}
	if seg.ResidentGrams >= ram.ResidentGrams {
		return res, fmt.Errorf("segmented store kept %d grams resident, in-RAM baseline has %d",
			seg.ResidentGrams, ram.ResidentGrams)
	}
	if seg.LookupP50Ns > maxRatio*ram.LookupP50Ns {
		return res, fmt.Errorf("segment-tier median lookup %.1fx slower than in-RAM (limit %.1fx)",
			seg.LookupP50Ns/ram.LookupP50Ns, maxRatio)
	}
	return res, nil
}
