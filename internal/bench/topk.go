package bench

import (
	"fmt"
	"math/rand"
	"reflect"
	"time"

	"pqgram/internal/forest"
	"pqgram/internal/gen"
	"pqgram/internal/obs"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

// TopKPoint is one k of the top-k experiment: wall-clock and counter
// measurements of the same lookup batch on the exhaustive postings scan
// and the VP-tree metric path. Per-lookup quantities are averages over
// the batch.
type TopKPoint struct {
	K                  int     `json:"k"`
	ExhaustiveNsPerOp  float64 `json:"exhaustive_ns_per_op"`
	MetricNsPerOp      float64 `json:"metric_ns_per_op"`
	Speedup            float64 `json:"speedup"`                // exhaustive / metric
	ExhaustiveExamined float64 `json:"exhaustive_examined"`    // candidates per lookup
	MetricNodesVisited float64 `json:"metric_nodes_visited"`   // distance computations per lookup
	MetricPruned       float64 `json:"metric_pruned_triangle"` // subtrees skipped per lookup

	// TracedCounters are the exact work totals of one fully-traced metric
	// pass over the query batch (tracer sampling every lookup), keyed by
	// registry counter name. The pass fails the experiment if the span
	// attribution disagrees with the registry deltas.
	TracedCounters map[string]int64 `json:"traced_counters,omitempty"`
}

// DefaultTopKKs is the k sweep of the top-k experiment.
var DefaultTopKKs = []int{1, 2, 5, 10, 25, 100}

// TopK regenerates the top-k / kNN experiment: a clustered collection of
// numBases XMark base documents × versions perturbed near-duplicates each
// (the dedup workload the metric index exists for) is queried with fresh
// perturbations of the bases across a k sweep, once with the exhaustive
// planner and once with the VP-tree. Both paths must return identical
// rankings (the run errors out otherwise).
//
// The corpus is clustered on purpose: on mutually dissimilar documents
// the pairwise distances concentrate in a narrow band and no exact metric
// index can prune (concentration of measure) — near-duplicate clusters
// are where the triangle bound has room to work. For small k the VP-tree
// must visit fewer nodes than the exhaustive scan examines candidates;
// the run errors out if it does not, so `pqbench -exp topk` doubles as a
// regression guard. This is the experiment behind EXPERIMENTS.md §"Top-k
// lookups" and the topk section of the BENCH_pr6.json report.
func TopK(numBases, versions, totalNodes, queries, iters int, ks []int) (*Result, []TopKPoint, error) {
	if numBases < 1 || versions < 1 {
		return nil, nil, fmt.Errorf("bench: need at least one base and one version")
	}
	if queries < 1 {
		queries = 1
	}
	if iters < 1 {
		iters = 1
	}
	numDocs := numBases * versions
	perDoc := totalNodes / numDocs
	if perDoc < 16 {
		perDoc = 16
	}
	rng := rand.New(rand.NewSource(baseSeed + 67))
	bases := make([]*tree.Tree, numBases)
	batch := make([]forest.Doc, 0, numDocs)
	for b := 0; b < numBases; b++ {
		bases[b] = gen.XMark(baseSeed+int64(1000+b), perDoc)
		for v := 0; v < versions; v++ {
			doc := bases[b]
			if v > 0 {
				var err error
				doc, _, err = gen.Perturb(rng, bases[b], 1+rng.Intn(8), gen.DefaultMix)
				if err != nil {
					return nil, nil, err
				}
			}
			batch = append(batch, forest.Doc{ID: fmt.Sprintf("doc-%03d-%02d", b, v), Tree: doc})
		}
	}
	f := forest.New(P33)
	if err := f.AddAll(batch, 0); err != nil {
		return nil, nil, err
	}
	col := obs.NewCollector()
	f.SetCollector(col)
	defer f.SetCollector(nil)
	defer f.SetPlanMode(forest.PlanAuto)

	mkQueries := func(seed int64) ([]profile.Index, error) {
		qrng := rand.New(rand.NewSource(seed))
		out := make([]profile.Index, queries)
		for i := range out {
			q, _, err := gen.Perturb(qrng, bases[(i*numBases)/queries], 1+qrng.Intn(6), gen.DefaultMix)
			if err != nil {
				return nil, err
			}
			out[i] = profile.BuildIndex(q, P33)
		}
		return out, nil
	}
	qs, err := mkQueries(baseSeed + 71)
	if err != nil {
		return nil, nil, err
	}
	// Distinct warm-up seed, for the same reason as in Pruning: measuring
	// with the queries that primed the caches would flatter whichever path
	// runs second.
	warm, err := mkQueries(baseSeed + 73)
	if err != nil {
		return nil, nil, err
	}
	// Build the VP-tree up front so its one-time construction cost is not
	// charged to the first measured k.
	f.SetPlanMode(forest.PlanMetric)
	f.LookupIndexTopK(qs[0], 1)

	ops := float64(iters * queries)
	run := func(mode forest.PlanMode, k int) (float64, map[string]int64, [][]forest.Match) {
		f.SetPlanMode(mode)
		for _, q := range warm {
			f.LookupIndexTopK(q, k)
		}
		before := col.Snapshot()
		var res [][]forest.Match
		t0 := time.Now()
		for it := 0; it < iters; it++ {
			res = res[:0]
			for _, q := range qs {
				res = append(res, f.LookupIndexTopK(q, k))
			}
		}
		elapsed := time.Since(t0)
		return float64(elapsed.Nanoseconds()) / ops, col.Snapshot().CounterDeltas(before), res
	}

	res := &Result{
		Title: "Top-k lookup: VP-tree metric index vs exhaustive scan",
		Comment: fmt.Sprintf("%d docs (%d bases x %d near-duplicate versions, ~%d nodes each), %d perturbed-base queries x %d iterations per k",
			numDocs, numBases, versions, perDoc, queries, iters),
		Header: []string{"exhaustive", "metric", "speedup", "cand(ex)", "visited(vp)", "pruned-subtrees"},
	}
	points := make([]TopKPoint, 0, len(ks))
	for _, k := range ks {
		exNS, exD, exRes := run(forest.PlanExhaustive, k)
		mtNS, mtD, mtRes := run(forest.PlanMetric, k)
		if !reflect.DeepEqual(exRes, mtRes) {
			return nil, nil, fmt.Errorf("metric and exhaustive top-%d lookups disagree", k)
		}
		f.SetPlanMode(forest.PlanMetric)
		traced, err := tracedCounters(col, len(qs), func() {
			for _, q := range qs {
				f.LookupIndexTopK(q, k)
			}
		}, map[string]string{
			"nodes_visited":   "forest_metric_nodes_visited",
			"pruned_triangle": "forest_metric_pruned_triangle",
		})
		if err != nil {
			return nil, nil, fmt.Errorf("k=%d: %w", k, err)
		}
		pt := TopKPoint{
			K:                  k,
			ExhaustiveNsPerOp:  exNS,
			MetricNsPerOp:      mtNS,
			Speedup:            exNS / mtNS,
			ExhaustiveExamined: float64(exD["forest_lookup_candidates_examined"]) / ops,
			MetricNodesVisited: float64(mtD["forest_metric_nodes_visited"]) / ops,
			MetricPruned:       float64(mtD["forest_metric_pruned_triangle"]) / ops,
			TracedCounters:     traced,
		}
		if k <= 10 && numDocs >= 64 && pt.MetricNodesVisited >= pt.ExhaustiveExamined {
			return nil, nil, fmt.Errorf("metric top-%d visited %.0f nodes, exhaustive examined %.0f — the VP-tree stopped pruning",
				k, pt.MetricNodesVisited, pt.ExhaustiveExamined)
		}
		points = append(points, pt)
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("k=%d", k),
			Values: []string{
				ms(time.Duration(exNS)), ms(time.Duration(mtNS)),
				fmt.Sprintf("%.1fx", pt.Speedup),
				fmt.Sprintf("%.0f", pt.ExhaustiveExamined),
				fmt.Sprintf("%.0f", pt.MetricNodesVisited),
				fmt.Sprintf("%.0f", pt.MetricPruned),
			},
		})
	}
	return res, points, nil
}
