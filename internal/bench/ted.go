package bench

import (
	"pqgram/internal/ted"
	"pqgram/internal/tree"
)

// tedDistance wraps the Zhang–Shasha baseline for the quality ablation.
func tedDistance(a, b *tree.Tree) int { return ted.Distance(a, b) }
