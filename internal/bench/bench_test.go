package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestExperimentsRunAtTinyScale executes every experiment at a very small
// scale: the harness itself cross-checks incremental results against
// rebuilds and panics on divergence, so this doubles as an end-to-end
// correctness test of the whole pipeline.
func TestExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cases := []struct {
		name string
		run  func() *Result
	}{
		{"fig13-lookup", func() *Result { return Fig13Lookup(6000, []int{4, 16}, 0.7) }},
		{"fig13-update", func() *Result { return Fig13Update([]int{2000, 4000}, 20) }},
		{"fig14-size", func() *Result { return Fig14Size([]int{2000, 4000}) }},
		{"fig14-update", func() *Result { return Fig14Update(4000, []int{1, 8, 64}) }},
		{"table2", func() *Result { return Table2(4000, []int{1, 10}) }},
		{"ablate-index", func() *Result { return AblationAnchorIndex(3000, 100) }},
		{"ablate-mix", func() *Result { return AblationOpMix(3000, 50) }},
		{"ablate-pq", func() *Result { return AblationPQ(60, 8) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := c.run()
			if len(res.Rows) == 0 {
				t.Fatal("no rows")
			}
			var buf bytes.Buffer
			if err := res.Print(&buf); err != nil {
				t.Fatal(err)
			}
			out := buf.String()
			if !strings.Contains(out, "==") || len(strings.Split(out, "\n")) < 4 {
				t.Fatalf("unexpected rendering:\n%s", out)
			}
		})
	}
}
