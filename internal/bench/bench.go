// Package bench implements the experiment harness that regenerates every
// table and figure of the paper's evaluation (§9) on synthetic workloads:
//
//	Fig 13 (left)  — approximate lookup with vs. without precomputed index
//	Fig 13 (right) — index construction vs. incremental update over tree size
//	Fig 14 (left)  — index size vs. tree size for 1,2- and 3,3-grams
//	Fig 14 (right) — incremental update time vs. log size (DBLP-shaped)
//	Table 2        — per-step breakdown of the index update time
//
// plus ablations: the anchor-ID secondary index of §8.1 and the effect of
// the edit-operation mix. Absolute numbers differ from the paper's 2006
// RDBMS testbed; the reproduced quantities are the shapes: who wins, the
// growth rates, where the crossovers are.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"pqgram/internal/core"
	"pqgram/internal/forest"
	"pqgram/internal/gen"
	"pqgram/internal/profile"
	"pqgram/internal/store"
	"pqgram/internal/tree"
	"pqgram/internal/xmlconv"
)

// P33 is the paper's default parameterization.
var P33 = profile.Params{P: 3, Q: 3}

// baseSeed offsets every experiment's deterministic rng seed; see SetSeed.
var baseSeed int64

// SetSeed offsets the seeds of all experiment workloads. The default 0
// reproduces the historical workloads exactly; any other value yields a
// different but equally deterministic run (pqbench -seed).
func SetSeed(s int64) { baseSeed = s }

// Row is one measured configuration of an experiment.
type Row struct {
	Label  string
	Values []string
}

// Result is a regenerated table or figure: a header and its measured rows.
type Result struct {
	Title   string
	Comment string
	Header  []string
	Rows    []Row
}

// Print renders the result as an aligned text table.
func (r *Result) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s ==\n", r.Title); err != nil {
		return err
	}
	if r.Comment != "" {
		fmt.Fprintf(w, "%s\n", r.Comment)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, h := range r.Header {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, h)
	}
	fmt.Fprintln(tw)
	for _, row := range r.Rows {
		fmt.Fprint(tw, row.Label)
		for _, v := range row.Values {
			fmt.Fprintf(tw, "\t%s", v)
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

func ms(d time.Duration) string { return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000) }

// Fig13Lookup regenerates Figure 13 (left): the wall-clock time of an
// approximate lookup of one document in collections with a similar total
// node count but different document counts, with a precomputed index
// versus computing the indexes on the fly.
func Fig13Lookup(totalNodes int, docCounts []int, tau float64) *Result {
	res := &Result{
		Title:   "Figure 13 (left): lookup time with and without precomputed index",
		Comment: fmt.Sprintf("collections of ~%d total nodes; threshold tau=%.2f; XMark-shaped documents", totalNodes, tau),
		Header:  []string{"#docs", "docsize", "indexed", "on-the-fly", "matches"},
	}
	for _, nd := range docCounts {
		docs := gen.XMarkForest(int64(nd), nd, totalNodes)
		f := forest.New(P33)
		for i, d := range docs {
			if err := f.Add(fmt.Sprintf("doc-%d", i), d); err != nil {
				panic(err)
			}
		}
		// The query: a perturbed copy of one collection document.
		rng := rand.New(rand.NewSource(baseSeed + int64(nd)*13))
		query, _, err := gen.Perturb(rng, docs[len(docs)/2], 10, gen.DefaultMix)
		if err != nil {
			panic(err)
		}

		t0 := time.Now()
		matches := f.Lookup(query, tau)
		indexed := time.Since(t0)

		// On the fly: every tree's index is computed during the lookup
		// (the paper's comparison, where index construction dominates).
		t0 = time.Now()
		q := profile.BuildIndex(query, P33)
		onTheFly := 0
		for _, d := range docs {
			if q.Distance(profile.BuildIndex(d, P33)) < tau {
				onTheFly++
			}
		}
		fly := time.Since(t0)

		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("%d", nd),
			Values: []string{
				fmt.Sprintf("%d", docs[0].Size()),
				ms(indexed), ms(fly), fmt.Sprintf("%d", len(matches)),
			},
		})
		if len(matches) != onTheFly {
			panic("bench: indexed and on-the-fly lookups disagree")
		}
	}
	return res
}

// Fig13Update regenerates Figure 13 (right): building the index from
// scratch versus updating it incrementally for a fixed log, over growing
// tree sizes. The build time grows linearly with the tree; the update time
// is nearly independent of it.
func Fig13Update(sizes []int, logOps int) *Result {
	res := &Result{
		Title:   "Figure 13 (right): index construction vs incremental update over tree size",
		Comment: fmt.Sprintf("XMark-shaped documents; log of %d edit operations", logOps),
		Header:  []string{"nodes", "build", "update", "build/update"},
	}
	for _, n := range sizes {
		doc := gen.XMark(int64(n), n)
		i0 := profile.BuildIndex(doc, P33)

		rng := rand.New(rand.NewSource(baseSeed + int64(n)*17))
		_, log, err := gen.RandomScript(rng, doc, logOps, gen.DefaultMix)
		if err != nil {
			panic(err)
		}

		t0 := time.Now()
		rebuilt := profile.BuildIndex(doc, P33)
		build := time.Since(t0)

		updated := i0.Clone() // off the clock; the paper updates in place
		t0 = time.Now()
		if _, err := core.UpdateIndexInPlace(updated, doc, log, P33); err != nil {
			panic(err)
		}
		update := time.Since(t0)

		if !updated.Equal(rebuilt) {
			panic("bench: incremental update diverged from rebuild")
		}
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("%d", doc.Size()),
			Values: []string{
				ms(build), ms(update),
				fmt.Sprintf("%.1fx", float64(build)/float64(update)),
			},
		})
	}
	return res
}

// Fig14Size regenerates Figure 14 (left): the serialized size of the
// pq-gram index compared to the size of the document, for 1,2- and
// 3,3-grams, over growing tree sizes.
func Fig14Size(sizes []int) *Result {
	res := &Result{
		Title:   "Figure 14 (left): index size vs tree size",
		Comment: "XMark-shaped documents; document size = serialized XML bytes",
		Header:  []string{"nodes", "xml-bytes", "idx(1,2)", "idx(3,3)", "idx(3,3)/xml"},
	}
	for _, n := range sizes {
		doc := gen.XMark(int64(n), n)
		xml, err := xmlconv.WriteString(doc)
		if err != nil {
			panic(err)
		}
		size := func(pr profile.Params) int64 {
			f := forest.New(pr)
			if err := f.Add("doc", doc); err != nil {
				panic(err)
			}
			sz, err := store.Size(f)
			if err != nil {
				panic(err)
			}
			return sz
		}
		s12 := size(profile.Params{P: 1, Q: 2})
		s33 := size(P33)
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("%d", doc.Size()),
			Values: []string{
				fmt.Sprintf("%d", len(xml)),
				fmt.Sprintf("%d", s12),
				fmt.Sprintf("%d", s33),
				fmt.Sprintf("%.3f", float64(s33)/float64(len(xml))),
			},
		})
	}
	return res
}

// Fig14Update regenerates Figure 14 (right): incremental update time as a
// function of the log size on a DBLP-shaped document.
func Fig14Update(docNodes int, logSizes []int) *Result {
	res := &Result{
		Title:   "Figure 14 (right): update time vs number of edit operations",
		Comment: fmt.Sprintf("DBLP-shaped document with ~%d nodes", docNodes),
		Header:  []string{"edits", "update", "per-edit"},
	}
	base := gen.DBLP(3, docNodes)
	i0 := profile.BuildIndex(base, P33)
	for _, ops := range logSizes {
		doc := base.Clone()
		rng := rand.New(rand.NewSource(baseSeed + int64(ops)*29))
		_, log, err := gen.RandomScript(rng, doc, ops, gen.DefaultMix)
		if err != nil {
			panic(err)
		}
		updated := i0.Clone() // off the clock; the paper updates in place
		t0 := time.Now()
		if _, err := core.UpdateIndexInPlace(updated, doc, log, P33); err != nil {
			panic(err)
		}
		update := time.Since(t0)
		if !updated.Equal(profile.BuildIndex(doc, P33)) {
			panic("bench: incremental update diverged from rebuild")
		}
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("%d", ops),
			Values: []string{
				ms(update),
				fmt.Sprintf("%.3fms", float64(update.Microseconds())/1000/float64(ops)),
			},
		})
	}
	return res
}

// Table2 regenerates Table 2: the share of the individual maintenance
// steps (Δ⁺, λ(Δ⁺), Δ⁻, λ(Δ⁻), index update) in the overall update time,
// for logs of growing size on a DBLP-shaped document.
func Table2(docNodes int, logSizes []int) *Result {
	res := &Result{
		Title:   "Table 2: breakdown of the index update time",
		Comment: fmt.Sprintf("DBLP-shaped document with ~%d nodes; columns are log sizes", docNodes),
	}
	res.Header = []string{"action"}
	for _, ops := range logSizes {
		res.Header = append(res.Header, fmt.Sprintf("%d", ops))
	}
	base := gen.DBLP(4, docNodes)
	i0 := profile.BuildIndex(base, P33)

	stats := make([]core.Stats, len(logSizes))
	for i, ops := range logSizes {
		doc := base.Clone()
		rng := rand.New(rand.NewSource(baseSeed + int64(ops)*31))
		_, log, err := gen.RandomScript(rng, doc, ops, gen.DefaultMix)
		if err != nil {
			panic(err)
		}
		updated := i0.Clone() // off the clock; the paper updates in place
		st, err := core.UpdateIndexInPlace(updated, doc, log, P33)
		if err != nil {
			panic(err)
		}
		if !updated.Equal(profile.BuildIndex(doc, P33)) {
			panic("bench: incremental update diverged from rebuild")
		}
		stats[i] = st
	}
	row := func(label string, get func(core.Stats) time.Duration) {
		r := Row{Label: label}
		for _, st := range stats {
			r.Values = append(r.Values, ms(get(st)))
		}
		res.Rows = append(res.Rows, r)
	}
	row("Δ+", func(s core.Stats) time.Duration { return s.DeltaPlus })
	row("I+ = λ(Δ+)", func(s core.Stats) time.Duration { return s.LambdaPlus })
	row("Δ-", func(s core.Stats) time.Duration { return s.DeltaMinus })
	row("I- = λ(Δ-)", func(s core.Stats) time.Duration { return s.LambdaMinus })
	row("I0 \\ I- ⊎ I+", func(s core.Stats) time.Duration { return s.ApplyIndex })
	row("total", func(s core.Stats) time.Duration { return s.Total })
	return res
}

// AblationAnchorIndex measures §8.1's claim that the secondary index on
// the anchor IDs of the temporary tables gives a substantial advantage,
// by running the rewind phase with and without the parId index.
func AblationAnchorIndex(docNodes, logOps int) *Result {
	res := &Result{
		Title:   "Ablation: anchor-ID secondary index on the delta tables (§8.1)",
		Comment: fmt.Sprintf("XMark document with ~%d nodes, log of %d operations", docNodes, logOps),
		Header:  []string{"variant", "delta+rewind", ""},
	}
	doc := gen.XMark(6, docNodes)
	rng := rand.New(rand.NewSource(baseSeed + 41))
	_, log, err := gen.RandomScript(rng, doc, logOps, gen.DefaultMix)
	if err != nil {
		panic(err)
	}
	run := func(indexed bool) time.Duration {
		t0 := time.Now()
		tables := core.NewTablesIndexed(P33, indexed)
		for _, op := range log {
			tables.AddDelta(doc, op)
		}
		if err := tables.Rewind(log); err != nil {
			panic(err)
		}
		return time.Since(t0)
	}
	with := run(true)
	without := run(false)
	res.Rows = append(res.Rows,
		Row{Label: "with index", Values: []string{ms(with), ""}},
		Row{Label: "without index", Values: []string{ms(without), fmt.Sprintf("%.1fx slower", float64(without)/float64(with))}},
	)
	return res
}

// AblationOpMix measures how the composition of the log (inserts, deletes,
// renames) affects the update time.
func AblationOpMix(docNodes, logOps int) *Result {
	res := &Result{
		Title:   "Ablation: edit-operation mix vs update time",
		Comment: fmt.Sprintf("XMark document with ~%d nodes, logs of %d operations", docNodes, logOps),
		Header:  []string{"mix", "update", "Δ+ grams"},
	}
	mixes := []struct {
		name string
		mix  gen.OpMix
	}{
		{"renames only", gen.OpMix{Rename: 1}},
		{"inserts only", gen.OpMix{Insert: 1}},
		{"deletes only", gen.OpMix{Delete: 1}},
		{"even mix", gen.DefaultMix},
	}
	base := gen.XMark(8, docNodes)
	i0 := profile.BuildIndex(base, P33)
	for _, m := range mixes {
		doc := base.Clone()
		rng := rand.New(rand.NewSource(baseSeed + 43))
		_, log, err := gen.RandomScript(rng, doc, logOps, m.mix)
		if err != nil {
			panic(err)
		}
		updated, st, err := core.UpdateIndexStats(i0, doc, log, P33)
		if err != nil {
			panic(err)
		}
		if !updated.Equal(profile.BuildIndex(doc, P33)) {
			panic("bench: incremental update diverged from rebuild")
		}
		res.Rows = append(res.Rows, Row{
			Label:  m.name,
			Values: []string{ms(st.Total), fmt.Sprintf("%d", st.PlusGrams)},
		})
	}
	return res
}

// AblationPQ measures the approximation quality of different (p,q)
// parameterizations against the exact tree edit distance: the Spearman-like
// agreement between pq-gram rankings and TED rankings of perturbed trees.
func AblationPQ(docNodes, pairs int) *Result {
	res := &Result{
		Title:   "Ablation: (p,q) sensitivity of the distance quality",
		Comment: fmt.Sprintf("ranking agreement with tree edit distance over %d tree pairs of ~%d nodes", pairs, docNodes),
		Header:  []string{"p,q", "agreement", "avg dist"},
	}
	params := []profile.Params{{P: 1, Q: 1}, {P: 1, Q: 2}, {P: 2, Q: 2}, {P: 3, Q: 3}, {P: 4, Q: 4}}
	rng := rand.New(rand.NewSource(baseSeed + 47))

	type pair struct {
		a, b *tree.Tree
		ted  int
	}
	var ps []pair
	base := gen.XMark(9, docNodes)
	for i := 0; i < pairs; i++ {
		mutant, _, err := gen.Perturb(rng, base, 1+rng.Intn(30), gen.DefaultMix)
		if err != nil {
			panic(err)
		}
		ps = append(ps, pair{base, mutant, tedDistance(base, mutant)})
	}
	for _, pr := range params {
		agree, total := 0, 0
		sum := 0.0
		dists := make([]float64, len(ps))
		for i, p := range ps {
			dists[i] = profile.Distance(p.a, p.b, pr)
			sum += dists[i]
		}
		for i := 0; i < len(ps); i++ {
			for j := i + 1; j < len(ps); j++ {
				if ps[i].ted == ps[j].ted {
					continue
				}
				total++
				if (ps[i].ted < ps[j].ted) == (dists[i] < dists[j]) {
					agree++
				}
			}
		}
		res.Rows = append(res.Rows, Row{
			Label: fmt.Sprintf("%d,%d", pr.P, pr.Q),
			Values: []string{
				fmt.Sprintf("%.1f%%", 100*float64(agree)/float64(total)),
				fmt.Sprintf("%.3f", sum/float64(len(ps))),
			},
		})
	}
	return res
}
