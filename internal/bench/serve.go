package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pqgram/internal/forest"
	"pqgram/internal/gen"
	"pqgram/internal/obs"
	"pqgram/internal/profile"
	"pqgram/internal/serve"
	"pqgram/internal/tree"
)

// ServePhase is one phase of the serving-tier load experiment: exact
// latency quantiles over every read the closed loop issued, plus the
// work counters of the same window — enough to attribute the latency to
// the tier that produced it (cache hit vs shared flight vs real
// traversal) and to see what the traversals cost (candidates examined).
type ServePhase struct {
	Phase              string `json:"phase"`
	Workers            int    `json:"workers"`
	Reads              int    `json:"reads"`
	Writes             int    `json:"writes"`
	P50NS              int64  `json:"p50_ns"`
	P95NS              int64  `json:"p95_ns"`
	P99NS              int64  `json:"p99_ns"`
	Shed               int64  `json:"shed"`
	CacheHit           int64  `json:"cache_hits"`
	CacheMiss          int64  `json:"cache_misses"`
	CacheInvalidations int64  `json:"cache_invalidations"`
	BatchFlights       int64  `json:"batch_flights"`
	BatchJoined        int64  `json:"batch_joined"`
	// MeanBatchSize is requests per executed traversal, including the
	// leader: 1.0 means no coalescing happened.
	MeanBatchSize      float64 `json:"mean_batch_size"`
	CandidatesExamined int64   `json:"candidates_examined"`
	// HitRate is cache hits over reads. The hot-repeat phase errors out
	// if it is zero — a serving tier whose cache never hits repeated
	// queries is broken, and the report must not paper over it.
	HitRate float64 `json:"hit_rate"`
}

// Serve is the serving-tier load experiment behind `pqbench -exp serve`:
// a deterministic closed-loop generator (workers goroutines, each
// issuing opsPerWorker back-to-back requests) over an internal/serve
// tier in three phases —
//
//	cold-unique: every read is a distinct query and every 8th op is a
//	  write, so the cache cannot hit and the index churns; the baseline.
//	hot-repeat: reads cycle a pool of 8 queries, no writes; after one
//	  cold pass per key everything is answered by the result cache.
//	mixed-rw: the same hot pool with every 16th op a write, so each
//	  mutation invalidates the cache (epoch bump) and the steady state
//	  is the invalidate-recompute-hit cycle the paper's maintenance
//	  claim implies.
//
// The workload (corpus, queries, write payloads, request order per
// worker) is seed-derived and independent of scheduling; only the
// measured durations vary between runs. Reads alternate threshold
// lookups (τ=0.6) and top-k (k=5), so both cache populations are
// exercised. The experiment errors out if any request fails, if any
// response is dropped, or if the hot-repeat phase's cache hit rate is
// zero.
func Serve(docs, workers, opsPerWorker int) (*Result, []ServePhase, error) {
	if docs < 16 {
		docs = 16
	}
	if workers < 2 {
		workers = 2
	}
	if opsPerWorker < 16 {
		opsPerWorker = 16
	}
	const (
		hotPool    = 8
		tau        = 0.6
		topK       = 5
		coldWrite  = 8  // cold-unique: every 8th op writes
		mixedWrite = 16 // mixed-rw: every 16th op writes
	)

	// Corpus: clusters of near-duplicate DBLP documents (docs/8 clusters),
	// so queries have real candidate sets, built once for all phases.
	col := obs.NewCollector()
	f := forest.New(P33)
	f.SetCollector(col)
	rng := rand.New(rand.NewSource(baseSeed + 83))
	clusters := docs / 8
	if clusters < 1 {
		clusters = 1
	}
	corpus := make([]forest.Doc, docs)
	trees := make([]*tree.Tree, docs)
	for i := range corpus {
		trees[i] = gen.DBLP(baseSeed+int64(i%clusters), 100+i%60)
		corpus[i] = forest.Doc{ID: fmt.Sprintf("doc-%04d", i), Tree: trees[i]}
	}
	if err := f.AddAll(corpus, 0); err != nil {
		return nil, nil, err
	}
	srv := serve.New(f, nil, serve.Config{
		CacheSize:   4 * hotPool,
		MaxInFlight: 2 * workers,
		MaxQueue:    4 * workers,
	}, col)

	// Query pools. The unique pool holds one query per cold read; the hot
	// pool is shared by the repeat phases. All are perturbed copies of
	// corpus documents, so answers are non-trivial.
	mkQuery := func(r *rand.Rand, i int) (profile.Index, error) {
		q, _, err := gen.Perturb(r, trees[i%docs], 1+r.Intn(5), gen.DefaultMix)
		if err != nil {
			return nil, err
		}
		return profile.BuildIndex(q, P33), nil
	}
	totalOps := workers * opsPerWorker
	unique := make([]profile.Index, totalOps)
	for i := range unique {
		var err error
		if unique[i], err = mkQuery(rng, i); err != nil {
			return nil, nil, err
		}
	}
	hot := make([]profile.Index, hotPool)
	for i := range hot {
		var err error
		if hot[i], err = mkQuery(rng, i*docs/hotPool); err != nil {
			return nil, nil, err
		}
	}
	// Write payloads: deterministic perturbations Put under a rotating id
	// set, claimed by writers through an atomic sequence. Bounded ids keep
	// the forest from growing without bound across phases.
	writeDocs := make([]*tree.Tree, totalOps)
	for i := range writeDocs {
		d, _, err := gen.Perturb(rng, trees[i%docs], 2, gen.DefaultMix)
		if err != nil {
			return nil, nil, err
		}
		writeDocs[i] = d
	}

	type spec struct {
		name       string
		queryFor   func(w, i int) profile.Index
		writeEvery int
	}
	phases := []spec{
		{"cold-unique", func(w, i int) profile.Index { return unique[w*opsPerWorker+i] }, coldWrite},
		{"hot-repeat", func(w, i int) profile.Index { return hot[(w+i)%hotPool] }, 0},
		{"mixed-rw", func(w, i int) profile.Index { return hot[(w+i)%hotPool] }, mixedWrite},
	}

	res := &Result{
		Title: "Serving tier: closed-loop load over batching, result cache and admission control",
		Comment: fmt.Sprintf("%d docs, %d workers x %d ops per phase; reads alternate lookup(tau=%.1f) and top-%d",
			docs, workers, opsPerWorker, tau, topK),
		Header: []string{"reads", "writes", "p50", "p95", "p99", "hit-rate", "batch", "shed", "cand/read"},
	}
	var points []ServePhase
	var writeSeq atomic.Int64
	for _, ph := range phases {
		before := col.Snapshot()
		lats := make([][]int64, workers)
		errs := make([]error, workers)
		var wg sync.WaitGroup
		var reads, writes atomic.Int64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				own := make([]int64, 0, opsPerWorker)
				for i := 0; i < opsPerWorker; i++ {
					if ph.writeEvery > 0 && i%ph.writeEvery == ph.writeEvery-1 {
						n := writeSeq.Add(1)
						id := fmt.Sprintf("w-doc-%d", n%8)
						if _, err := srv.Put(id, writeDocs[int(n)%len(writeDocs)]); err != nil {
							errs[w] = fmt.Errorf("write %d: %w", n, err)
							return
						}
						writes.Add(1)
						continue
					}
					q := ph.queryFor(w, i)
					t0 := time.Now()
					var err error
					if i%4 == 3 {
						_, err = srv.TopK(q, topK)
					} else {
						_, err = srv.Lookup(q, tau)
					}
					if err != nil {
						// The admission config is sized for the loop, so
						// even ErrOverloaded is a failure: a closed loop
						// of this width must be absorbable.
						errs[w] = fmt.Errorf("worker %d op %d: %w", w, i, err)
						return
					}
					own = append(own, time.Since(t0).Nanoseconds())
					reads.Add(1)
				}
				lats[w] = own
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, nil, fmt.Errorf("phase %s: %w", ph.name, err)
			}
		}
		var all []int64
		for _, l := range lats {
			all = append(all, l...)
		}
		if int64(len(all)) != reads.Load() || reads.Load()+writes.Load() != int64(totalOps) {
			return nil, nil, fmt.Errorf("phase %s: dropped responses: %d latencies, %d reads + %d writes of %d ops",
				ph.name, len(all), reads.Load(), writes.Load(), totalOps)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		q := func(p float64) int64 { return all[int(p*float64(len(all)-1))] }
		d := col.Snapshot().CounterDeltas(before)

		pt := ServePhase{
			Phase:              ph.name,
			Workers:            workers,
			Reads:              int(reads.Load()),
			Writes:             int(writes.Load()),
			P50NS:              q(0.50),
			P95NS:              q(0.95),
			P99NS:              q(0.99),
			Shed:               d["serve_shed"],
			CacheHit:           d["serve_cache_hit"],
			CacheMiss:          d["serve_cache_miss"],
			CacheInvalidations: d["serve_cache_invalidate"],
			BatchFlights:       d["serve_batch_flights"],
			BatchJoined:        d["serve_batch_joined"],
			CandidatesExamined: d["forest_lookup_candidates_examined"],
			HitRate:            float64(d["serve_cache_hit"]) / float64(reads.Load()),
		}
		if pt.BatchFlights > 0 {
			pt.MeanBatchSize = float64(pt.BatchFlights+pt.BatchJoined) / float64(pt.BatchFlights)
		}
		if ph.name == "hot-repeat" && pt.CacheHit == 0 {
			return nil, nil, fmt.Errorf("phase %s: cache hit rate is zero on repeated queries — the result cache is not serving", ph.name)
		}
		points = append(points, pt)
		res.Rows = append(res.Rows, Row{
			Label: ph.name,
			Values: []string{
				fmt.Sprintf("%d", pt.Reads), fmt.Sprintf("%d", pt.Writes),
				ms(time.Duration(pt.P50NS)), ms(time.Duration(pt.P95NS)), ms(time.Duration(pt.P99NS)),
				fmt.Sprintf("%.0f%%", 100*pt.HitRate),
				fmt.Sprintf("%.2f", pt.MeanBatchSize),
				fmt.Sprintf("%d", pt.Shed),
				fmt.Sprintf("%.0f", float64(pt.CandidatesExamined)/float64(pt.Reads)),
			},
		})
	}
	return res, points, nil
}

// ServeSmoke is the `make check` guard: a ~1s micro load run of the same
// closed loop, failing on any dropped response, request error, or a
// zero hit rate on the repeated-query phase.
func ServeSmoke() (*Result, error) {
	res, _, err := Serve(64, 4, 64)
	return res, err
}
