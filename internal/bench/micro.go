package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"pqgram/internal/forest"
	"pqgram/internal/gen"
	"pqgram/internal/obs"
	"pqgram/internal/store"
	"pqgram/internal/tree"
)

// MicroOp is one measured operation of the micro suite.
type MicroOp struct {
	Name    string  `json:"name"`
	Iters   int     `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
}

// MicroReport is the machine-readable output of the micro suite:
// wall-clock ns/op per operation, the full metrics snapshot the
// instrumented run produced, (since v2) the candidate-pruning threshold
// sweep of pruning.go and the top-k metric-vs-exhaustive sweep of
// topk.go, (since v3) the serving-tier load phases of serve.go, and
// (since v4) the out-of-core segment sweep of segments.go.
// This is the artifact `make bench-json` writes (BENCH_pr2.json through
// BENCH_pr9.json), the repo's perf trajectory.
type MicroReport struct {
	Schema    string          `json:"schema"` // "pqgram/microbench/v4"
	Timestamp string          `json:"timestamp"`
	GoVersion string          `json:"go_version"`
	GOOS      string          `json:"goos"`
	GOARCH    string          `json:"goarch"`
	NumCPU    int             `json:"num_cpu"`
	Docs      int             `json:"docs"`
	Seed      int64           `json:"seed"`
	Ops       []MicroOp       `json:"ops,omitempty"`
	Metrics   obs.Snapshot    `json:"metrics"`
	Pruning   []PruningPoint  `json:"pruning,omitempty"`  // pruned-vs-exhaustive lookup sweep
	TopK      []TopKPoint     `json:"topk,omitempty"`     // metric-vs-exhaustive top-k sweep
	Serve     []ServePhase    `json:"serve,omitempty"`    // serving-tier closed-loop load phases
	Segments  []SegmentsPoint `json:"segments,omitempty"` // out-of-core segment sweep
}

// NewReport returns a MicroReport stamped with the run environment, for
// experiments that emit the machine-readable artifact without running
// the full micro suite (`pqbench -exp serve -json ...`).
func NewReport(docs int, seed int64) *MicroReport {
	return &MicroReport{
		Schema:    "pqgram/microbench/v4",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Docs:      docs,
		Seed:      seed,
	}
}

// WriteFile writes the report as indented JSON.
func (r *MicroReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// timeOp runs fn iters times and records the mean wall-clock ns/op.
func timeOp(rep *MicroReport, name string, iters int, fn func() error) error {
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	rep.Ops = append(rep.Ops, MicroOp{
		Name:    name,
		Iters:   iters,
		NsPerOp: float64(time.Since(t0).Nanoseconds()) / float64(iters),
	})
	return nil
}

// Micro runs the instrumented end-to-end micro suite: a journaled store is
// bulk-built from `docs` DBLP-shaped documents (clusters of near-
// duplicates, so lookups and the join have real candidate sets), then
// exercised through lookups, batched lookups, incremental updates, a
// similarity join, a close/reopen cycle (journal replay) and a compaction.
// Every operation runs against the collector, so the report carries both
// wall-clock ns/op and the metric counters the run generated.
func Micro(docs int, seed int64, col *obs.Collector) (*Result, *MicroReport, error) {
	if docs < 4 {
		docs = 4
	}
	rep := NewReport(docs, seed)
	dir, err := os.MkdirTemp("", "pqbench-micro-")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "micro.pqg")

	// Workload: docs/8 clusters of near-duplicate DBLP documents.
	rng := rand.New(rand.NewSource(seed))
	batch := make([]forest.Doc, docs)
	trees := make([]*tree.Tree, docs)
	clusters := docs / 8
	if clusters < 1 {
		clusters = 1
	}
	for i := range batch {
		trees[i] = gen.DBLP(seed+int64(i%clusters), 120+i%80)
		batch[i] = forest.Doc{ID: fmt.Sprintf("doc-%04d", i), Tree: trees[i]}
	}

	st, err := store.CreateStore(path, P33)
	if err != nil {
		return nil, nil, err
	}
	st.SetCollector(col)
	if err := timeOp(rep, "bulk_build", 1, func() error {
		return st.AddAll(batch, 0)
	}); err != nil {
		return nil, nil, err
	}
	f := st.Forest()

	// Approximate lookups: perturbed copies of collection documents.
	queries := make([]*tree.Tree, 8)
	for i := range queries {
		q, _, err := gen.Perturb(rng, trees[(i*docs)/len(queries)], 6, gen.DefaultMix)
		if err != nil {
			return nil, nil, err
		}
		queries[i] = q
	}
	qi := 0
	if err := timeOp(rep, "lookup", 4*len(queries), func() error {
		f.Lookup(queries[qi%len(queries)], 0.6)
		qi++
		return nil
	}); err != nil {
		return nil, nil, err
	}
	if err := timeOp(rep, "lookup_many_batch8", 4, func() error {
		f.LookupMany(queries, 0.6, 0)
		return nil
	}); err != nil {
		return nil, nil, err
	}

	// Incremental maintenance through the journaled store.
	updates := docs / 4
	if updates < 4 {
		updates = 4
	}
	ui := 0
	if err := timeOp(rep, "update_10ops", updates, func() error {
		doc := trees[ui%docs]
		_, log, err := gen.RandomScript(rng, doc, 10, gen.DefaultMix)
		if err != nil {
			return err
		}
		_, err = st.Update(fmt.Sprintf("doc-%04d", ui%docs), doc, log)
		ui++
		return err
	}); err != nil {
		return nil, nil, err
	}

	if err := timeOp(rep, "similarity_join", 1, func() error {
		f.SimilarityJoin(0.5)
		return nil
	}); err != nil {
		return nil, nil, err
	}

	// Durability cycle: close, reopen (replays the update journal), attach
	// the collector again so the replay metrics land in the snapshot, then
	// compact into a fresh base.
	if err := st.Close(); err != nil {
		return nil, nil, err
	}
	if err := timeOp(rep, "reopen_replay", 1, func() error {
		st, err = store.OpenStore(path)
		return err
	}); err != nil {
		return nil, nil, err
	}
	st.SetCollector(col)
	if err := timeOp(rep, "compact", 1, func() error {
		return st.Compact()
	}); err != nil {
		return nil, nil, err
	}
	if err := st.Forest().SelfCheck(); err != nil {
		return nil, nil, fmt.Errorf("post-run selfcheck: %w", err)
	}
	if err := st.Close(); err != nil {
		return nil, nil, err
	}
	rep.Metrics = col.Snapshot()

	res := &Result{
		Title:   "Micro suite: instrumented end-to-end operation timings",
		Comment: fmt.Sprintf("%d DBLP-shaped documents, seed %d; metric counters from the same run", docs, seed),
		Header:  []string{"op", "iters", "ns/op"},
	}
	for _, op := range rep.Ops {
		res.Rows = append(res.Rows, Row{
			Label:  op.Name,
			Values: []string{fmt.Sprintf("%d", op.Iters), fmt.Sprintf("%.0f", op.NsPerOp)},
		})
	}
	return res, rep, nil
}
