package pqgram

import (
	"pqgram/internal/profile"
	"pqgram/internal/store"
)

// Store is a durable forest index: a base snapshot plus a write-ahead
// journal. Mutations (Add, Remove, Update) append a small record before
// being applied, so the persistent cost of an incremental update is
// proportional to the edit log, not to the index — the paper's
// "persistent and incrementally maintainable" made literal. A crash loses
// at most the interrupted append; OpenStore recovers the intact prefix.
type Store = store.Store

// CreateStore creates a new empty store at path (plus path+".wal").
func CreateStore(path string, p Params) (*Store, error) {
	return store.CreateStore(path, profile.Params(p))
}

// OpenStore loads the base snapshot, replays the journal, and truncates
// any torn tail left by a crash.
func OpenStore(path string) (*Store, error) { return store.OpenStore(path) }

// RecoveryInfo describes what OpenStore found and repaired while bringing
// a store back: intact records replayed, torn or checksum-failed bytes
// dropped, and whether a stale or foreign journal had to be discarded.
// Available from Store.Recovery after an open.
type RecoveryInfo = store.RecoveryInfo

// Segmented is the out-of-core variant of Store: an LSM-style storage
// engine whose memtable is the forest itself. Flush evicts the mutated
// documents into an immutable, checksummed, bloom-filtered segment file;
// lookups merge the in-RAM postings with segment streams and stay
// byte-identical to the all-in-RAM path. Use it when the collection is
// larger than the RAM you want to spend. The on-disk format is specified
// in STORAGE.md.
type Segmented = store.Segmented

// SegmentStats describes the current shape of a segmented store: live
// segments and their total bytes, resident (memtable) vs evicted
// (segment-served) documents, and pending tombstones.
type SegmentStats = store.SegmentStats

// CreateSegmented creates a new empty segmented store rooted at path
// (path+".manifest", path+".NNNNNN.seg" segments, path+".wal" journal).
func CreateSegmented(path string, p Params) (*Segmented, error) {
	return store.CreateSegmented(path, profile.Params(p))
}

// OpenSegmented opens a segmented store: loads the manifest, verifies and
// maps every live segment, replays the journal against the memtable, and
// discards a stale journal left by a crash between manifest swap and
// journal reset.
func OpenSegmented(path string) (*Segmented, error) {
	return store.OpenSegmented(path)
}

// IsSegmented reports whether path names a segmented store, by probing
// for its manifest file. Tools use it to auto-detect which opener to use.
func IsSegmented(path string) bool { return store.IsSegmented(path) }
