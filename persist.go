package pqgram

import (
	"pqgram/internal/profile"
	"pqgram/internal/store"
)

// Store is a durable forest index: a base snapshot plus a write-ahead
// journal. Mutations (Add, Remove, Update) append a small record before
// being applied, so the persistent cost of an incremental update is
// proportional to the edit log, not to the index — the paper's
// "persistent and incrementally maintainable" made literal. A crash loses
// at most the interrupted append; OpenStore recovers the intact prefix.
type Store = store.Store

// CreateStore creates a new empty store at path (plus path+".wal").
func CreateStore(path string, p Params) (*Store, error) {
	return store.CreateStore(path, profile.Params(p))
}

// OpenStore loads the base snapshot, replays the journal, and truncates
// any torn tail left by a crash.
func OpenStore(path string) (*Store, error) { return store.OpenStore(path) }

// RecoveryInfo describes what OpenStore found and repaired while bringing
// a store back: intact records replayed, torn or checksum-failed bytes
// dropped, and whether a stale or foreign journal had to be discarded.
// Available from Store.Recovery after an open.
type RecoveryInfo = store.RecoveryInfo
