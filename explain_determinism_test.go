// Differential tests for the tracing/EXPLAIN determinism contract: for a
// fixed corpus, query and plan mode the work-counter span tree is
// byte-identical across runs (durations excluded), and tracing that is
// disabled — no tracer, or a tracer that does not sample the operation —
// adds zero allocations to the lookup hot path.
package pqgram_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"pqgram"
	"pqgram/internal/forest"
	"pqgram/internal/gen"
	"pqgram/internal/obs"
	"pqgram/internal/profile"
	"pqgram/internal/tree"
)

// explainCorpus builds one deterministic 48-document XMark forest plus a
// perturbed-member query. Each call builds everything from scratch from
// the same seeds, standing in for a separate process run.
func explainCorpus(t *testing.T) (*forest.Index, *tree.Tree) {
	t.Helper()
	docs := gen.XMarkForest(4242, 48, 24000)
	f := forest.New(benchP)
	for i, d := range docs {
		if err := f.Add(fmt.Sprintf("doc-%02d", i), d); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(4243))
	query, _, err := gen.Perturb(rng, docs[24], 10, gen.DefaultMix)
	if err != nil {
		t.Fatal(err)
	}
	return f, query
}

// strippedJSON is the comparison form of an explain result: the span tree
// with durations zeroed, marshaled. Byte equality is the contract.
func strippedJSON(t *testing.T, res pqgram.ExplainResult) string {
	t.Helper()
	b, err := json.Marshal(res.Trace.StripDurations())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestExplainLookupDeterministic runs every threshold-lookup plan mode on
// two independently built copies of the same corpus and requires the
// work-counter trees, the rendered EXPLAIN text, the plan decision and
// the matches to be byte-identical between the runs.
func TestExplainLookupDeterministic(t *testing.T) {
	f1, q1 := explainCorpus(t)
	f2, q2 := explainCorpus(t)
	cases := []struct {
		name     string
		mode     forest.PlanMode
		tau      float64
		wantPlan string
	}{
		{"exhaustive", forest.PlanExhaustive, 0.5, "exhaustive"},
		{"pruned", forest.PlanPruned, 0.5, "pruned"},
		{"auto", forest.PlanAuto, 0.5, ""},
		{"scan-all", forest.PlanAuto, 1.5, "scan-all"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f1.SetPlanMode(c.mode)
			f2.SetPlanMode(c.mode)
			r1 := f1.ExplainLookup(q1, c.tau)
			r2 := f2.ExplainLookup(q2, c.tau)
			if c.wantPlan != "" && r1.Plan != c.wantPlan {
				t.Fatalf("plan = %q, want %q", r1.Plan, c.wantPlan)
			}
			if r1.Plan != r2.Plan || len(r1.Matches) != len(r2.Matches) {
				t.Fatalf("runs disagree: plan %q/%q, %d/%d matches", r1.Plan, r2.Plan, len(r1.Matches), len(r2.Matches))
			}
			if j1, j2 := strippedJSON(t, r1), strippedJSON(t, r2); j1 != j2 {
				t.Fatalf("work-counter trees differ across runs:\n%s\nvs\n%s", j1, j2)
			}
			if s1, s2 := pqgram.FormatExplain(r1, false), pqgram.FormatExplain(r2, false); s1 != s2 {
				t.Fatalf("rendered explains differ:\n%svs\n%s", s1, s2)
			}
		})
	}
}

// TestExplainTopKDeterministic is the top-k half of the contract,
// covering the exhaustive scorer and the VP-tree metric path (whose
// descent counters must also be run-to-run stable).
func TestExplainTopKDeterministic(t *testing.T) {
	f1, q1 := explainCorpus(t)
	f2, q2 := explainCorpus(t)
	cases := []struct {
		name     string
		mode     forest.PlanMode
		wantPlan string
	}{
		{"exhaustive", forest.PlanExhaustive, "exhaustive"},
		{"metric", forest.PlanMetric, "metric"},
		{"auto", forest.PlanAuto, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f1.SetPlanMode(c.mode)
			f2.SetPlanMode(c.mode)
			r1 := f1.ExplainTopK(q1, 5)
			r2 := f2.ExplainTopK(q2, 5)
			if c.wantPlan != "" && r1.Plan != c.wantPlan {
				t.Fatalf("plan = %q, want %q", r1.Plan, c.wantPlan)
			}
			if j1, j2 := strippedJSON(t, r1), strippedJSON(t, r2); j1 != j2 {
				t.Fatalf("work-counter trees differ across runs:\n%s\nvs\n%s", j1, j2)
			}
			if s1, s2 := pqgram.FormatExplain(r1, false), pqgram.FormatExplain(r2, false); s1 != s2 {
				t.Fatalf("rendered explains differ:\n%svs\n%s", s1, s2)
			}
			// A second explain on the now-warm forest (VP-tree built) must
			// still agree with itself.
			r3 := f1.ExplainTopK(q1, 5)
			r4 := f1.ExplainTopK(q1, 5)
			if j3, j4 := strippedJSON(t, r3), strippedJSON(t, r4); j3 != j4 {
				t.Fatalf("warm runs differ:\n%s\nvs\n%s", j3, j4)
			}
		})
	}
}

// TestLookupTracingOffAllocParity is the hot-path acceptance bar: a
// collector with no tracer, and a collector whose tracer does not sample
// the operation, must both allocate exactly as much per lookup as no
// collector at all.
func TestLookupTracingOffAllocParity(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; exact allocs/op only hold without it")
	}
	f, query := explainCorpus(t)
	f.SetPlanMode(forest.PlanPruned)
	defer f.SetPlanMode(forest.PlanAuto)
	q := profile.BuildIndex(query, benchP)

	measure := func() float64 {
		f.LookupIndex(q, 0.7) // warm scratch pools and absorb a tracer's first sample
		return testing.AllocsPerRun(200, func() {
			_ = f.LookupIndex(q, 0.7)
		})
	}

	f.SetCollector(nil)
	off := measure()

	f.SetCollector(obs.NewCollector())
	collectorOnly := measure()

	col := obs.NewCollector()
	// Sampling 1-in-2^30 with one warm-up call: the tracer is attached but
	// never samples inside the measured window.
	col.SetTracer(obs.NewTracer(1<<30, 8))
	f.SetCollector(col)
	tracerUnsampled := measure()
	f.SetCollector(nil)

	if collectorOnly != off {
		t.Errorf("collector-only lookup allocates %.1f/op, collector-off %.1f/op — instrumentation leaked onto the hot path", collectorOnly, off)
	}
	if tracerUnsampled != off {
		t.Errorf("unsampled-tracer lookup allocates %.1f/op, collector-off %.1f/op — tracing-off is no longer free", tracerUnsampled, off)
	}
}
