package pqgram

import "pqgram/internal/core"

// UpdateIndex is the paper's contribution (Algorithm 1): it computes the
// pq-gram index of the edited tree Tn from
//
//   - the old index i0 (of the original tree T0, which need not exist
//     anymore),
//   - the resulting tree tn, and
//   - the log of inverse edit operations,
//
// without rebuilding the index and without reconstructing any intermediate
// tree version. The cost is O(|log|·(log|T| + log|log|)) — essentially
// independent of the tree size — versus O(|T|) for a rebuild.
//
// i0 is not modified. An error means the log does not belong to the
// tree/index pair (including node-ID reuse, see CheckFreshIDs); the index
// is never silently corrupted.
func UpdateIndex(i0 Index, tn *Tree, log Log, p Params) (Index, error) {
	return core.UpdateIndex(i0, tn, log, p)
}

// UpdateStats is the per-step timing breakdown of one UpdateIndex run,
// mirroring Table 2 of the paper: computing the new pq-grams Δ⁺, mapping
// them to label-tuples, rewinding them into the old pq-grams Δ⁻, mapping
// those, and applying both to the index.
type UpdateStats = core.Stats

// UpdateIndexStats is UpdateIndex with a per-step timing breakdown.
func UpdateIndexStats(i0 Index, tn *Tree, log Log, p Params) (Index, UpdateStats, error) {
	return core.UpdateIndexStats(i0, tn, log, p)
}

// UpdateIndexInPlace is UpdateIndex applied destructively to i0 — the
// paper's own semantics, where the final step is an UPDATE on the stored
// index relation. It avoids copying the index, so the cost depends only on
// the log, not on the document. On error i0 may hold a partially applied
// delta and must be discarded.
func UpdateIndexInPlace(i0 Index, tn *Tree, log Log, p Params) (UpdateStats, error) {
	return core.UpdateIndexInPlace(i0, tn, log, p)
}
