// Package pqgram is an incrementally maintainable index for approximate
// lookups in hierarchical data — a from-scratch Go implementation of
// Augsten, Böhlen and Gamper, "An Incrementally Maintainable Index for
// Approximate Lookups in Hierarchical Data", VLDB 2006.
//
// # Overview
//
// The pq-grams of a tree are all its subtrees of a specific shape: an
// anchor node with p-1 ancestors and q contiguous children (padded with
// dummy nodes at the boundaries). Trees that share many pq-grams are
// similar; the pq-gram distance approximates the tree edit distance at
// O(n log n) cost instead of O(n²)+.
//
// The package provides:
//
//   - ordered labeled trees, built programmatically or parsed from XML;
//   - pq-gram indexes (bags of hashed label-tuples) and the pq-gram
//     distance between trees;
//   - a forest index over a document collection with threshold and
//     top-k approximate lookups, persistable to disk;
//   - tree edit operations (insert, delete, rename) with inverses and
//     logs; and
//   - the paper's contribution: incremental index maintenance. Given the
//     old index, the edited document, and the log of inverse edit
//     operations, UpdateIndex produces the new index without rebuilding
//     it and without reconstructing any intermediate document version.
//
// # Quick start
//
//	doc, _ := pqgram.ParseXMLString(`<a><b/><c/></a>`)
//	other, _ := pqgram.ParseXMLString(`<a><b/><x/></a>`)
//	d := pqgram.Distance(doc, other, pqgram.DefaultParams) // ∈ [0, 1]
//
// See the examples directory for complete programs.
package pqgram

import (
	"pqgram/internal/profile"
	"pqgram/internal/ted"
	"pqgram/internal/tree"
)

// Params holds the pq-gram shape parameters: p ancestors (including the
// anchor) and q children per gram. The paper's default is p = q = 3.
type Params = profile.Params

// DefaultParams is the paper's standard parameterization, 3,3-grams.
var DefaultParams = profile.Default

// Tree is an ordered labeled tree with unique node identifiers. Build one
// with NewTree/AddChild, ParseTree, or ParseXML.
type Tree = tree.Tree

// Node is a single tree node: an (identifier, label) pair.
type Node = tree.Node

// NodeID identifies a node uniquely within a tree.
type NodeID = tree.NodeID

// NewTree creates a tree consisting of a single root node.
func NewTree(rootLabel string) *Tree { return tree.New(rootLabel) }

// ParseTree parses the compact parenthesized notation "a(b c(d))".
func ParseTree(s string) (*Tree, error) { return tree.Parse(s) }

// MustParseTree is ParseTree that panics on error, for tests and fixtures.
func MustParseTree(s string) *Tree { return tree.MustParse(s) }

// Index is the pq-gram index of a single tree: the bag of label-tuple
// fingerprints of its pq-grams (Definition 3 of the paper).
type Index = profile.Index

// LabelTuple is a fixed-width fingerprint of one pq-gram's label tuple.
type LabelTuple = profile.LabelTuple

// BuildIndex computes the pq-gram index of a tree from scratch.
func BuildIndex(t *Tree, p Params) Index { return profile.BuildIndex(t, p) }

// Count returns the number of pq-grams of the tree: f+q-1 per inner node
// of fanout f, one per leaf.
func Count(t *Tree, p Params) int { return profile.Count(t, p) }

// Distance computes the pq-gram distance between two trees,
//
//	dist(T, T') = 1 − 2·|I(T) ∩ I(T')| / |I(T) ⊎ I(T')|  ∈ [0, 1],
//
// building both indexes on the fly. With precomputed indexes use
// Index.Distance.
func Distance(a, b *Tree, p Params) float64 { return profile.Distance(a, b, p) }

// DistanceUnordered is Distance on the canonical forms of the two trees
// (every node's children sorted by label, ties broken structurally):
// sibling permutations cost nothing, so it measures similarity of
// *unordered* trees — the right mode for JSON-like data or XML whose
// element order is incidental. Canonicalize once with Tree.CanonicalClone
// when indexing many unordered documents.
func DistanceUnordered(a, b *Tree, p Params) float64 {
	return profile.Distance(a.CanonicalClone(), b.CanonicalClone(), p)
}

// TreeEditDistance computes the exact tree edit distance of Zhang and
// Shasha with unit costs. It is quadratic and meant for small trees and
// for validating the pq-gram approximation; use Distance for large data.
func TreeEditDistance(a, b *Tree) int { return ted.Distance(a, b) }
