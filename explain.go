package pqgram

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"pqgram/internal/forest"
	"pqgram/internal/obs"
)

// ExplainResult is the structured outcome of (*Forest).ExplainLookup /
// ExplainTopK: the plan the query planner chose, the matches, and a
// JSON-ready span tree whose integer attributes carry the per-stage work
// counters (candidates examined, postings scanned, VP-tree nodes visited,
// ...). For a fixed corpus, query and plan mode the work counters are
// byte-identical across runs; only the span durations vary.
type ExplainResult = forest.ExplainResult

// SpanSnapshot is one node of a finished trace: name, duration and
// sorted-key integer work attributes. StripDurations returns the
// deterministic comparison form.
type SpanSnapshot = obs.SpanSnapshot

// TraceSnapshot is one published trace in a Tracer's ring buffer.
type TraceSnapshot = obs.TraceSnapshot

// Span is a live trace span; instrumented code paths accept and return
// nil-safe *Span values.
type Span = obs.Span

// Tracer samples queries for tracing (deterministic every-Nth) and keeps
// the most recent traces in a bounded lock-striped ring buffer. Attach
// one with Collector.SetTracer; read back with Tracer.RecentTraces.
type Tracer = obs.Tracer

// NewTracer creates a tracer sampling every Nth traceable operation
// (every ≤ 1 traces all) and retaining about `capacity` recent traces.
func NewTracer(every, capacity int) *Tracer { return obs.NewTracer(every, capacity) }

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format: counters, gauges, and histograms as cumulative
// le-buckets plus _sum/_count, all in stable sorted order.
func WritePrometheus(w io.Writer, s MetricsSnapshot) error { return obs.WritePrometheus(w, s) }

// FormatExplain renders an ExplainResult as an indented EXPLAIN
// ANALYZE-style plan. Attributes print in sorted key order, so without
// timings the output is byte-identical across runs for the same corpus,
// query and plan mode; withTimings appends each span's wall time.
func FormatExplain(res ExplainResult, withTimings bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  plan=%s", res.Op, res.Plan)
	if res.Op == "topk" {
		fmt.Fprintf(&b, "  k=%d", res.K)
	} else {
		fmt.Fprintf(&b, "  tau=%s", strconv.FormatFloat(res.Tau, 'g', -1, 64))
	}
	fmt.Fprintf(&b, "  matches=%d\n", len(res.Matches))
	formatSpan(&b, res.Trace, 0, withTimings)
	return b.String()
}

func formatSpan(b *strings.Builder, s SpanSnapshot, depth int, withTimings bool) {
	b.WriteString(strings.Repeat("  ", depth))
	if depth > 0 {
		b.WriteString("-> ")
	}
	b.WriteString(s.Name)
	keys := make([]string, 0, len(s.Attrs))
	for k := range s.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, " %s=%d", k, s.Attrs[k])
	}
	if withTimings {
		fmt.Fprintf(b, " [%dns]", s.DurationNS)
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		formatSpan(b, c, depth+1, withTimings)
	}
}
