# Development targets. `make check` is the gate a change must pass:
# formatting, vet, the pqlint invariant suite (see internal/lint), build,
# the full test suite under the race detector, a short fuzz pass over
# every fuzz target (seed corpora plus FUZZTIME of generation), a
# coverage gate over the correctness-critical packages, and a
# single-iteration sweep of every benchmark so perf code cannot silently
# rot. Override the fuzz duration with e.g. `make check FUZZTIME=30s`.

GO      ?= go
FUZZTIME ?= 5s

# Coverage floors of the gate below: the measured baseline at the time
# the gate was added (forest 84.6%, profile 88.0%, obs 93.5%, serve
# 84.4%, store 84.0%), minus a small slack so unrelated refactors don't
# trip it. Raise them when coverage rises; never lower them to make a
# change pass.
COVER_FLOOR_FOREST  ?= 80
COVER_FLOOR_PROFILE ?= 84
COVER_FLOOR_OBS     ?= 85
COVER_FLOOR_SERVE   ?= 80
COVER_FLOOR_STORE   ?= 80

.PHONY: check fmt-check lint vet build test race fuzz cover bench bench-smoke bench-json

check: fmt-check vet lint build test fuzz cover bench-smoke

# gofmt guard: fails listing the unformatted files instead of rewriting
# them, so CI and `make check` reject what `gofmt -w` would change.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The repository's own static-analysis suite: crash-safety, concurrency
# and determinism invariants (ARCHITECTURE.md, "Enforced invariants").
lint:
	$(GO) run ./cmd/pqlint ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Dedicated race-detector pass (its own CI job): every test twice under
# a bounded GOMAXPROCS, giving schedule-dependent interleavings a second
# chance to trip the locking protocols that lockcheck and lockorder
# enforce statically.
race:
	GOMAXPROCS=4 $(GO) test -race -count=2 ./...

# Each fuzz target runs alone (go test allows one -fuzz per invocation).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzUpdateIndex -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzParseOp -fuzztime=$(FUZZTIME) ./internal/edit
	$(GO) test -run='^$$' -fuzz=FuzzReadLog -fuzztime=$(FUZZTIME) ./internal/edit
	$(GO) test -run='^$$' -fuzz=FuzzLoad -fuzztime=$(FUZZTIME) ./internal/store
	$(GO) test -run='^$$' -fuzz=FuzzJournalReplay -fuzztime=$(FUZZTIME) ./internal/store
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/tree
	$(GO) test -run='^$$' -fuzz=FuzzDistanceMetric -fuzztime=$(FUZZTIME) ./internal/profile
	$(GO) test -run='^$$' -fuzz=FuzzServeRequest -fuzztime=$(FUZZTIME) ./internal/serve

# Coverage gate: the packages that carry the correctness arguments
# (distance algebra, lookup planning, the metric index, the serving
# tier) must not slip below their recorded floors.
cover:
	@set -e; \
	for spec in internal/forest:$(COVER_FLOOR_FOREST) internal/profile:$(COVER_FLOOR_PROFILE) internal/obs:$(COVER_FLOOR_OBS) internal/serve:$(COVER_FLOOR_SERVE) internal/store:$(COVER_FLOOR_STORE); do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; prof=$$(mktemp); \
		$(GO) test -coverprofile=$$prof ./$$pkg > /dev/null; \
		pct=$$($(GO) tool cover -func=$$prof | awk '/^total:/ { sub(/%/, "", $$3); print $$3 }'); \
		rm -f $$prof; \
		echo "coverage $$pkg: $$pct% (floor $$floor%)"; \
		if [ "$$(awk -v p=$$pct -v f=$$floor 'BEGIN { print (p >= f) ? 1 : 0 }')" != 1 ]; then \
			echo "coverage gate: $$pkg fell below its $$floor% floor"; exit 1; \
		fi; \
	done

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# One iteration of every benchmark plus the pruning, serve and segments
# guards: proves the bench harness still compiles and runs, fails if the
# pruned planner path regresses past 2x of the exhaustive one at any
# threshold, if the serving tier drops a response or its result cache
# stops hitting repeated queries, or if the segmented storage engine's
# bloom filters stop skipping probes / its lookups regress past 2x of
# the all-in-RAM path on a 256-doc corpus.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .
	$(GO) run ./cmd/pqbench -exp pruning-smoke
	$(GO) run ./cmd/pqbench -exp serve-smoke
	$(GO) run ./cmd/pqbench -exp segments-smoke

# Machine-readable perf snapshot: the instrumented micro suite of
# cmd/pqbench plus the candidate-pruning threshold sweep, the top-k
# metric-vs-exhaustive sweep, the serving-tier load phases and the
# out-of-core segment sweep, written as BENCH_pr9.json (ns/op per
# operation, the metric counters of the run, both planner curves, the
# serve percentiles, and resident-memory / bloom-skip / latency per
# segment count).
bench-json:
	$(GO) run ./cmd/pqbench -exp micro -n 400 -json BENCH_pr9.json
