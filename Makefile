# Development targets. `make check` is the gate a change must pass:
# formatting, vet, the pqlint invariant suite (see internal/lint), build,
# the full test suite under the race detector, a short fuzz pass over
# every fuzz target (seed corpora plus FUZZTIME of generation), and a
# single-iteration sweep of every benchmark so perf code cannot silently
# rot. Override the fuzz duration with e.g. `make check FUZZTIME=30s`.

GO      ?= go
FUZZTIME ?= 5s

.PHONY: check fmt-check lint vet build test fuzz bench bench-smoke bench-json

check: fmt-check vet lint build test fuzz bench-smoke

# gofmt guard: fails listing the unformatted files instead of rewriting
# them, so CI and `make check` reject what `gofmt -w` would change.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The repository's own static-analysis suite: crash-safety, concurrency
# and determinism invariants (ARCHITECTURE.md, "Enforced invariants").
lint:
	$(GO) run ./cmd/pqlint ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Each fuzz target runs alone (go test allows one -fuzz per invocation).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzUpdateIndex -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzParseOp -fuzztime=$(FUZZTIME) ./internal/edit
	$(GO) test -run='^$$' -fuzz=FuzzReadLog -fuzztime=$(FUZZTIME) ./internal/edit
	$(GO) test -run='^$$' -fuzz=FuzzLoad -fuzztime=$(FUZZTIME) ./internal/store
	$(GO) test -run='^$$' -fuzz=FuzzJournalReplay -fuzztime=$(FUZZTIME) ./internal/store
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/tree

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .

# One iteration of every benchmark plus the pruning guard: proves the
# bench harness still compiles and runs, and fails if the pruned planner
# path regresses past 2x of the exhaustive one at any threshold.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x .
	$(GO) run ./cmd/pqbench -exp pruning-smoke

# Machine-readable perf snapshot: the instrumented micro suite of
# cmd/pqbench plus the candidate-pruning threshold sweep, written as
# BENCH_pr4.json (ns/op per operation, the metric counters of the run,
# and the pruned-vs-exhaustive curve).
bench-json:
	$(GO) run ./cmd/pqbench -exp micro -n 400 -json BENCH_pr4.json
