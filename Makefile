# Development targets. `make check` is the gate a change must pass: vet,
# build, the full test suite under the race detector, and a short fuzz
# pass over every fuzz target (seed corpora plus FUZZTIME of generation).
# Override the fuzz duration with e.g. `make check FUZZTIME=30s`.

GO      ?= go
FUZZTIME ?= 5s

.PHONY: check vet build test fuzz bench

check: vet build test fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# Each fuzz target runs alone (go test allows one -fuzz per invocation).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzUpdateIndex -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzParseOp -fuzztime=$(FUZZTIME) ./internal/edit
	$(GO) test -run='^$$' -fuzz=FuzzReadLog -fuzztime=$(FUZZTIME) ./internal/edit
	$(GO) test -run='^$$' -fuzz=FuzzLoad -fuzztime=$(FUZZTIME) ./internal/store
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/tree

bench:
	$(GO) test -run='^$$' -bench=. -benchmem .
