// Benchmarks regenerating every table and figure of the paper's evaluation
// (§9) as testing.B benchmarks, plus microbenchmarks of the core
// operations and the ablation of §8.1's anchor-ID index claim. Run with
//
//	go test -bench=. -benchmem
//
// Fixtures are generated once per size and shared across benchmarks. The
// larger experiment scales live in cmd/pqbench.
package pqgram_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"pqgram"
	"pqgram/internal/core"
	"pqgram/internal/diff"
	"pqgram/internal/edit"
	"pqgram/internal/forest"
	"pqgram/internal/gen"
	"pqgram/internal/obs"
	"pqgram/internal/profile"
	"pqgram/internal/store"
)

var benchP = pqgram.DefaultParams

// --- shared fixtures -----------------------------------------------------

var (
	xmarkDocs  = map[int]*pqgram.Tree{}
	dblpDocs   = map[int]*pqgram.Tree{}
	forestsFix = map[int]*forest.Index{}
	forestDocs = map[int][]*pqgram.Tree{}
	fixMu      sync.Mutex
)

func xmarkDoc(n int) *pqgram.Tree {
	fixMu.Lock()
	defer fixMu.Unlock()
	if d, ok := xmarkDocs[n]; ok {
		return d
	}
	d := gen.XMark(int64(n), n)
	xmarkDocs[n] = d
	return d
}

func dblpDoc(n int) *pqgram.Tree {
	fixMu.Lock()
	defer fixMu.Unlock()
	if d, ok := dblpDocs[n]; ok {
		return d
	}
	d := gen.DBLP(int64(n), n)
	dblpDocs[n] = d
	return d
}

// lookupFixture builds a collection of numDocs XMark documents with a
// fixed total node budget, indexed in a forest (Figure 13 left setup).
func lookupFixture(numDocs int) (*forest.Index, []*pqgram.Tree) {
	fixMu.Lock()
	defer fixMu.Unlock()
	if f, ok := forestsFix[numDocs]; ok {
		return f, forestDocs[numDocs]
	}
	docs := gen.XMarkForest(int64(numDocs), numDocs, 300000)
	f := forest.New(benchP)
	for i, d := range docs {
		if err := f.Add(fmt.Sprintf("doc-%d", i), d); err != nil {
			panic(err)
		}
	}
	forestsFix[numDocs] = f
	forestDocs[numDocs] = docs
	return f, docs
}

// benchLiveUpdate measures continuous incremental maintenance: a live
// document and its live index, updated in place per batch of edits, as in
// the paper's application scenario. Script generation runs off the clock.
func benchLiveUpdate(b *testing.B, doc *pqgram.Tree, ops int) {
	b.Helper()
	tn := doc.Clone()
	idx := pqgram.BuildIndex(tn, benchP)
	rng := rand.New(rand.NewSource(int64(ops)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		_, log, err := gen.RandomScript(rng, tn, ops, gen.DefaultMix)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := pqgram.UpdateIndexInPlace(idx, tn, log, benchP); err != nil {
			b.Fatal(err)
		}
	}
}

// --- microbenchmarks -------------------------------------------------------

func BenchmarkBuildIndex(b *testing.B) {
	for _, n := range []int{10000, 50000, 200000} {
		doc := xmarkDoc(n)
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				idx := pqgram.BuildIndex(doc, benchP)
				if idx.Size() == 0 {
					b.Fatal("empty index")
				}
			}
		})
	}
}

func BenchmarkDistance(b *testing.B) {
	a := xmarkDoc(20000)
	rng := rand.New(rand.NewSource(1))
	c, _, err := gen.Perturb(rng, a, 50, gen.DefaultMix)
	if err != nil {
		b.Fatal(err)
	}
	ia, ic := pqgram.BuildIndex(a, benchP), pqgram.BuildIndex(c, benchP)
	b.Run("precomputed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = ia.Distance(ic)
		}
	})
	b.Run("on-the-fly", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = pqgram.Distance(a, c, benchP)
		}
	})
}

// --- Figure 13 (left): lookup with and without precomputed index ----------

func BenchmarkFig13LookupIndexed(b *testing.B) {
	for _, numDocs := range []int{32, 256, 2048} {
		f, docs := lookupFixture(numDocs)
		rng := rand.New(rand.NewSource(int64(numDocs)))
		query, _, err := gen.Perturb(rng, docs[numDocs/2], 10, gen.DefaultMix)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("docs=%d", numDocs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = f.Lookup(query, 0.7)
			}
		})
	}
}

// BenchmarkLookupPlanner compares the exhaustive lookup path against the
// threshold-aware pruned planner on the Figure-13 collection, at a
// selective and a permissive threshold.
func BenchmarkLookupPlanner(b *testing.B) {
	f, docs := lookupFixture(256)
	defer f.SetPlanMode(forest.PlanAuto)
	rng := rand.New(rand.NewSource(256))
	query, _, err := gen.Perturb(rng, docs[128], 10, gen.DefaultMix)
	if err != nil {
		b.Fatal(err)
	}
	q := profile.BuildIndex(query, benchP)
	for _, tau := range []float64{0.3, 0.7} {
		for _, mode := range []struct {
			name string
			mode forest.PlanMode
		}{{"exhaustive", forest.PlanExhaustive}, {"pruned", forest.PlanPruned}} {
			b.Run(fmt.Sprintf("tau=%.1f/%s", tau, mode.name), func(b *testing.B) {
				f.SetPlanMode(mode.mode)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					_ = f.LookupIndex(q, tau)
				}
			})
		}
	}
}

func BenchmarkFig13LookupOnTheFly(b *testing.B) {
	for _, numDocs := range []int{32, 256, 2048} {
		_, docs := lookupFixture(numDocs)
		rng := rand.New(rand.NewSource(int64(numDocs)))
		query, _, err := gen.Perturb(rng, docs[numDocs/2], 10, gen.DefaultMix)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("docs=%d", numDocs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := pqgram.BuildIndex(query, benchP)
				matches := 0
				for _, d := range docs {
					if q.Distance(pqgram.BuildIndex(d, benchP)) < 0.7 {
						matches++
					}
				}
			}
		})
	}
}

// --- Figure 13 (right): build from scratch vs incremental update ----------

func BenchmarkFig13BuildScratch(b *testing.B) {
	for _, n := range []int{50000, 200000, 800000} {
		doc := xmarkDoc(n)
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = pqgram.BuildIndex(doc, benchP)
			}
		})
	}
}

func BenchmarkFig13IncrementalUpdate(b *testing.B) {
	for _, n := range []int{50000, 200000, 800000} {
		doc := xmarkDoc(n)
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			benchLiveUpdate(b, doc, 100)
		})
	}
}

// --- Figure 14 (left): index size --------------------------------------

func BenchmarkFig14IndexSize(b *testing.B) {
	for _, n := range []int{50000, 200000} {
		doc := xmarkDoc(n)
		xml, err := pqgram.WriteXMLString(doc)
		if err != nil {
			b.Fatal(err)
		}
		for _, pr := range []pqgram.Params{{P: 1, Q: 2}, {P: 3, Q: 3}} {
			b.Run(fmt.Sprintf("nodes=%d/p%dq%d", n, pr.P, pr.Q), func(b *testing.B) {
				f := forest.New(pr)
				if err := f.Add("doc", doc); err != nil {
					b.Fatal(err)
				}
				var sz int64
				for i := 0; i < b.N; i++ {
					sz, err = store.Size(f)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(sz), "index-bytes")
				b.ReportMetric(float64(len(xml)), "xml-bytes")
				b.ReportMetric(float64(sz)/float64(len(xml)), "index/xml")
			})
		}
	}
}

// --- Figure 14 (right): update time by log size -------------------------

func BenchmarkFig14UpdateByLogSize(b *testing.B) {
	doc := dblpDoc(200000)
	for _, ops := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("edits=%d", ops), func(b *testing.B) {
			benchLiveUpdate(b, doc, ops)
		})
	}
}

// --- Table 2: breakdown of the update time ------------------------------

func BenchmarkTable2Breakdown(b *testing.B) {
	doc := dblpDoc(200000)
	for _, ops := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("edits=%d", ops), func(b *testing.B) {
			tn := doc.Clone()
			idx := pqgram.BuildIndex(tn, benchP)
			rng := rand.New(rand.NewSource(7 * int64(ops)))
			var agg pqgram.UpdateStats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				_, log, err := gen.RandomScript(rng, tn, ops, gen.DefaultMix)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				st, err := pqgram.UpdateIndexInPlace(idx, tn, log, benchP)
				if err != nil {
					b.Fatal(err)
				}
				agg.DeltaPlus += st.DeltaPlus
				agg.LambdaPlus += st.LambdaPlus
				agg.DeltaMinus += st.DeltaMinus
				agg.LambdaMinus += st.LambdaMinus
				agg.ApplyIndex += st.ApplyIndex
			}
			n := float64(b.N)
			b.ReportMetric(float64(agg.DeltaPlus.Microseconds())/n/1000, "Δ+ms/op")
			b.ReportMetric(float64(agg.LambdaPlus.Microseconds())/n/1000, "λΔ+ms/op")
			b.ReportMetric(float64(agg.DeltaMinus.Microseconds())/n/1000, "Δ-ms/op")
			b.ReportMetric(float64(agg.LambdaMinus.Microseconds())/n/1000, "λΔ-ms/op")
			b.ReportMetric(float64(agg.ApplyIndex.Microseconds())/n/1000, "applyms/op")
		})
	}
}

// --- Ablation: anchor-ID secondary index (§8.1) --------------------------

func BenchmarkAblationAnchorIndex(b *testing.B) {
	doc := xmarkDoc(200000)
	rng := rand.New(rand.NewSource(99))
	tn := doc.Clone()
	_, log, err := gen.RandomScript(rng, tn, 500, gen.DefaultMix)
	if err != nil {
		b.Fatal(err)
	}
	for _, indexed := range []bool{true, false} {
		name := "with-index"
		if !indexed {
			name = "without-index"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tables := core.NewTablesIndexed(profile.Params(benchP), indexed)
				for _, op := range log {
					tables.AddDelta(tn, op)
				}
				if err := tables.Rewind(log); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Forest maintenance under load ---------------------------------------

func BenchmarkForestUpdate(b *testing.B) {
	f, docs := lookupFixture(32)
	doc := docs[0].Clone()
	rng := rand.New(rand.NewSource(5))
	b.Run("ops=20", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, log, err := gen.RandomScript(rng, doc, 20, gen.DefaultMix)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := f.Update("doc-0", doc, log); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- extensions: diff recovery and log preprocessing ---------------------

func BenchmarkDiff(b *testing.B) {
	for _, n := range []int{100, 400} {
		base := gen.XMark(int64(n), n)
		rng := rand.New(rand.NewSource(int64(n)))
		mutant, _, err := gen.Perturb(rng, base, 10, gen.DefaultMix)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				work := base.Clone()
				if _, _, err := diff.Script(work, mutant); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOptimizeLog(b *testing.B) {
	doc := xmarkDoc(50000)
	tn := doc.Clone()
	rng := rand.New(rand.NewSource(1))
	_, log, err := gen.RandomScript(rng, tn, 1000, gen.OpMix{Insert: 1, Delete: 1, Rename: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = edit.OptimizeLog(tn, log)
	}
}

// --- concurrency and parallelism -----------------------------------------

var (
	dblpForestFix  *forest.Index
	dblpForestDocs []forest.Doc
)

// dblpForest builds the 500-tree DBLP-shaped benchmark forest (clusters of
// near-duplicates from repeated seeds, so the join has real work).
func dblpForest() (*forest.Index, []forest.Doc) {
	fixMu.Lock()
	defer fixMu.Unlock()
	if dblpForestFix != nil {
		return dblpForestFix, dblpForestDocs
	}
	docs := make([]forest.Doc, 500)
	for i := range docs {
		docs[i] = forest.Doc{
			ID:   fmt.Sprintf("dblp-%03d", i),
			Tree: gen.DBLP(int64(i%40), 150+i%100),
		}
	}
	f := forest.New(benchP)
	if err := f.AddAll(docs, 0); err != nil {
		panic(err)
	}
	dblpForestFix, dblpForestDocs = f, docs
	return f, docs
}

// BenchmarkForestLookupParallel measures concurrent lookup throughput on
// the sharded index: every P runs Lookup against the same forest.
func BenchmarkForestLookupParallel(b *testing.B) {
	f, docs := dblpForest()
	rng := rand.New(rand.NewSource(77))
	query, _, err := gen.Perturb(rng, docs[123].Tree, 8, gen.DefaultMix)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = f.Lookup(query, 0.6)
		}
	})
}

// BenchmarkLookup measures the cost of the instrumentation hooks on the
// lookup hot path: the same query against the same forest with no collector
// (the default one-nil-check fast path), with a collector attached
// (counter + latency histogram per op), with a collector whose tracer
// never samples the measured ops (one extra atomic load + nil check), and
// with every lookup fully traced (the worst case: a span tree per op).
// The acceptance bar is that "off" stays within noise of the seed,
// "on" and "tracer=unsampled" within a few percent of "off", and only
// "tracer=all" is allowed to pay for span allocation.
func BenchmarkLookup(b *testing.B) {
	f, docs := lookupFixture(256)
	rng := rand.New(rand.NewSource(256))
	query, _, err := gen.Perturb(rng, docs[128], 10, gen.DefaultMix)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("collector=off", func(b *testing.B) {
		f.SetCollector(nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = f.Lookup(query, 0.7)
		}
	})
	b.Run("collector=on", func(b *testing.B) {
		f.SetCollector(obs.NewCollector())
		defer f.SetCollector(nil) // the fixture is shared across benchmarks
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = f.Lookup(query, 0.7)
		}
	})
	b.Run("tracer=unsampled", func(b *testing.B) {
		col := obs.NewCollector()
		col.SetTracer(obs.NewTracer(1<<30, 8))
		f.SetCollector(col)
		defer f.SetCollector(nil)
		f.Lookup(query, 0.7) // absorb the tracer's always-sampled first call
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = f.Lookup(query, 0.7)
		}
	})
	b.Run("tracer=all", func(b *testing.B) {
		col := obs.NewCollector()
		col.SetTracer(obs.NewTracer(1, 64))
		f.SetCollector(col)
		defer f.SetCollector(nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = f.Lookup(query, 0.7)
		}
	})
}

// BenchmarkSimilarityJoin sweeps the join's worker count on the 500-tree
// DBLP forest; the result set is identical at every width. The speedup
// from widths > 1 requires GOMAXPROCS > 1 — on a single-CPU machine the
// map-reduce shuffle is pure overhead and workers=1 (the serial fast
// path) wins.
func BenchmarkSimilarityJoin(b *testing.B) {
	f, _ := dblpForest()
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = f.SimilarityJoinWorkers(0.5, w)
			}
		})
	}
}

// BenchmarkForestAddAll measures the parallel bulk build (profiling fans
// out across the pool, the shard merge runs one worker per stripe).
func BenchmarkForestAddAll(b *testing.B) {
	_, docs := dblpForest()
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f := forest.New(benchP)
				if err := f.AddAll(docs, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
