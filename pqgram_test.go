package pqgram_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"pqgram"
)

func TestPublicQuickPath(t *testing.T) {
	a, err := pqgram.ParseXMLString(`<dblp><article><author>A</author><title>T</title></article></dblp>`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pqgram.ParseXMLString(`<dblp><article><author>B</author><title>T</title></article></dblp>`)
	if err != nil {
		t.Fatal(err)
	}
	d := pqgram.Distance(a, b, pqgram.DefaultParams)
	if d <= 0 || d >= 1 {
		t.Fatalf("distance = %g, want in (0,1)", d)
	}
	if pqgram.Distance(a, a.Clone(), pqgram.DefaultParams) != 0 {
		t.Fatal("self distance not 0")
	}
}

func TestPublicEditAndUpdate(t *testing.T) {
	doc := pqgram.MustParseTree("a(c b(e f) c)")
	i0 := pqgram.BuildIndex(doc, pqgram.DefaultParams)

	script := pqgram.Script{
		pqgram.Insert(100, "g", 5, 1, 0), // leaf under f (preorder id 5)
		pqgram.Delete(3),                 // delete b
		pqgram.Rename(2, "x"),
	}
	if err := pqgram.CheckFreshIDs(doc, script); err != nil {
		t.Fatal(err)
	}
	var log pqgram.Log
	for _, op := range script {
		inv, err := op.Apply(doc)
		if err != nil {
			t.Fatal(err)
		}
		log = append(log, inv)
	}
	in, err := pqgram.UpdateIndex(i0, doc, log, pqgram.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Equal(pqgram.BuildIndex(doc, pqgram.DefaultParams)) {
		t.Fatal("incremental index differs from rebuild")
	}
}

func TestPublicLogRoundTrip(t *testing.T) {
	doc := pqgram.MustParseTree("a(b c)")
	inv, err := pqgram.Delete(2).Apply(doc)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pqgram.WriteLog(&buf, []pqgram.Op{inv}); err != nil {
		t.Fatal(err)
	}
	ops, err := pqgram.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || !ops[0].Equal(inv) {
		t.Fatalf("round trip: %v vs %v", ops, inv)
	}
}

func TestPublicForestPersistence(t *testing.T) {
	f := pqgram.NewForest(pqgram.DefaultParams)
	for i := 0; i < 4; i++ {
		doc := pqgram.MustParseTree(fmt.Sprintf("a(b c%d d)", i))
		if err := f.Add(fmt.Sprintf("doc%d", i), doc); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "idx.pqg")
	if err := pqgram.SaveForestFile(path, f); err != nil {
		t.Fatal(err)
	}
	g, err := pqgram.LoadForestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 4 {
		t.Fatalf("loaded %d trees", g.Len())
	}
	got := g.Lookup(pqgram.MustParseTree("a(b c1 d)"), 0.01)
	if len(got) != 1 || got[0].TreeID != "doc1" {
		t.Fatalf("lookup = %+v", got)
	}
	if n, err := pqgram.ForestSize(f); err != nil || n <= 0 {
		t.Fatalf("ForestSize = %d, %v", n, err)
	}
}

func TestPublicTED(t *testing.T) {
	a := pqgram.MustParseTree("f(d(a c(b)) e)")
	b := pqgram.MustParseTree("f(c(d(a b)) e)")
	if d := pqgram.TreeEditDistance(a, b); d != 2 {
		t.Fatalf("TED = %d, want 2", d)
	}
}

func TestPQGramApproximatesTED(t *testing.T) {
	// The pq-gram distance must rank a lightly edited tree closer than a
	// heavily edited one, in agreement with TED, on average.
	rng := rand.New(rand.NewSource(77))
	agreements, trials := 0, 0
	for i := 0; i < 40; i++ {
		base := randomPublicTree(rng, 40)
		light := base.Clone()
		heavy := base.Clone()
		applyRandomRenames(rng, light, 2)
		applyRandomRenames(rng, heavy, 14)
		dl := pqgram.Distance(base, light, pqgram.DefaultParams)
		dh := pqgram.Distance(base, heavy, pqgram.DefaultParams)
		trials++
		if dl < dh {
			agreements++
		}
	}
	if agreements*10 < trials*8 { // at least 80% agreement
		t.Fatalf("pq-gram ranking agreed with edit magnitude in only %d/%d trials", agreements, trials)
	}
}

func randomPublicTree(rng *rand.Rand, n int) *pqgram.Tree {
	labels := []string{"a", "b", "c", "d"}
	t := pqgram.NewTree("root")
	nodes := []*pqgram.Node{t.Root()}
	for i := 1; i < n; i++ {
		p := nodes[rng.Intn(len(nodes))]
		nodes = append(nodes, t.AddChildAt(p, labels[rng.Intn(len(labels))], rng.Intn(p.Fanout()+1)+1))
	}
	return t
}

func applyRandomRenames(rng *rand.Rand, t *pqgram.Tree, n int) {
	nodes := t.Nodes()
	for i := 0; i < n; i++ {
		node := nodes[1+rng.Intn(len(nodes)-1)]
		t.Rename(node, fmt.Sprintf("ren%d", i))
	}
}

func ExampleDistance() {
	a := pqgram.MustParseTree("a(b c d)")
	b := pqgram.MustParseTree("a(b x d)")
	c := pqgram.MustParseTree("z(y x w)")
	fmt.Printf("similar:  %.2f\n", pqgram.Distance(a, b, pqgram.DefaultParams))
	fmt.Printf("far:      %.2f\n", pqgram.Distance(a, c, pqgram.DefaultParams))
	// Output:
	// similar:  0.50
	// far:      1.00
}

func ExampleUpdateIndex() {
	doc := pqgram.MustParseTree("report(intro body(sec sec) refs)")
	index := pqgram.BuildIndex(doc, pqgram.DefaultParams)

	// Edit the document, collecting the log of inverse operations.
	var log pqgram.Log
	for _, op := range []pqgram.Op{
		pqgram.Rename(2, "abstract"),
		pqgram.Insert(100, "sec", 3, 3, 2),
	} {
		inv, _ := op.Apply(doc)
		log = append(log, inv)
	}

	// Maintain the index from the old index + edited doc + log alone.
	updated, _ := pqgram.UpdateIndex(index, doc, log, pqgram.DefaultParams)
	rebuilt := pqgram.BuildIndex(doc, pqgram.DefaultParams)
	fmt.Println("incremental == rebuild:", updated.Equal(rebuilt))
	// Output:
	// incremental == rebuild: true
}

func ExampleForest_Lookup() {
	f := pqgram.NewForest(pqgram.DefaultParams)
	f.Add("v1", pqgram.MustParseTree("cfg(db(host port) cache(ttl))"))
	f.Add("v2", pqgram.MustParseTree("cfg(db(host port) cache(ttl size))"))
	f.Add("other", pqgram.MustParseTree("inventory(item item item)"))

	query := pqgram.MustParseTree("cfg(db(host port user) cache(ttl))")
	for _, m := range f.Lookup(query, 0.8) {
		fmt.Printf("%s %.2f\n", m.TreeID, m.Distance)
	}
	// Output:
	// v1 0.20
	// v2 0.38
}
