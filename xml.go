package pqgram

import (
	"io"

	"pqgram/internal/xmlconv"
)

// StreamIndexXML computes the pq-gram index of an XML document directly
// from the token stream, without materializing the tree: memory is bounded
// by the document depth plus the fanouts along one root path, so documents
// of the paper's DBLP scale index in a few megabytes of working memory.
// The result equals ParseXML followed by BuildIndex.
func StreamIndexXML(r io.Reader, opts XMLOptions, p Params) (Index, error) {
	return xmlconv.StreamIndex(r, opts, p)
}

// XMLOptions controls the XML-to-tree conversion: elements become nodes,
// attributes become "@name=value" leaves (sorted by name), character data
// becomes "=text" leaves.
type XMLOptions = xmlconv.Options

// ParseXML reads one XML document into a tree using default options
// (attributes and non-whitespace text included).
func ParseXML(r io.Reader) (*Tree, error) { return xmlconv.Parse(r, XMLOptions{}) }

// ParseXMLString is ParseXML on a string.
func ParseXMLString(s string) (*Tree, error) { return xmlconv.ParseString(s, XMLOptions{}) }

// ParseXMLOptions is ParseXML with explicit conversion options.
func ParseXMLOptions(r io.Reader, opts XMLOptions) (*Tree, error) { return xmlconv.Parse(r, opts) }

// WriteXML serializes a tree back to XML, turning "@..." labels into
// attributes and "=..." labels into character data.
func WriteXML(w io.Writer, t *Tree) error { return xmlconv.Write(w, t) }

// WriteXMLString serializes a tree to an XML string.
func WriteXMLString(t *Tree) (string, error) { return xmlconv.WriteString(t) }

// WriteXMLIDs writes the tree's node identities (preorder, one per line) as
// a sidecar. XML itself does not carry node identity, but incremental index
// maintenance requires the edit log and the resulting tree to agree on it;
// persist the sidecar next to the document and restore with ApplyXMLIDs.
func WriteXMLIDs(w io.Writer, t *Tree) error { return xmlconv.WriteIDs(w, t) }

// ApplyXMLIDs renumbers a freshly parsed tree's nodes from a sidecar
// written by WriteXMLIDs.
func ApplyXMLIDs(r io.Reader, t *Tree) error { return xmlconv.ApplyIDs(r, t) }
