//go:build !race

package pqgram_test

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
