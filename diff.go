package pqgram

import "pqgram/internal/diff"

// Diff computes a minimal edit script that transforms tree a into tree b
// (|script| = TreeEditDistance(a, b)), applying it to a in place and
// returning both the script and the log of inverse operations. It covers
// the change-detection scenario: when two document versions exist but no
// edit feed does, Diff recovers a log that drives UpdateIndex.
//
// Inserted nodes receive fresh IDs. Diff inherits the paper's operation
// model: the root cannot change, so it fails if the minimal mapping cannot
// keep the two roots paired with an unchanged label. Cost: Zhang–Shasha is
// O(|a|·|b|·depth²) — fine for documents, not for multi-million-node trees.
func Diff(a, b *Tree) (Script, Log, error) { return diff.Script(a, b) }
