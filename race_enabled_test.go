//go:build race

package pqgram_test

// raceEnabled reports whether the race detector instruments this build.
// Its instrumentation allocates on its own, so exact allocs-per-op
// assertions are only meaningful without it.
const raceEnabled = true
