package pqgram

import (
	"io"

	"pqgram/internal/jsonconv"
)

// ParseJSON reads one JSON value into a tree: objects become "{}" nodes
// with key-labeled members (sorted, so member order never affects
// similarity), arrays become ordered "[]" nodes, and scalars become
// leaves. The same trees work with Distance, forests and incremental
// maintenance — JSON configuration drift, API payload similarity and AST
// matching all reduce to pq-gram distances.
func ParseJSON(r io.Reader) (*Tree, error) { return jsonconv.Parse(r) }

// ParseJSONString is ParseJSON on a string.
func ParseJSONString(s string) (*Tree, error) { return jsonconv.ParseString(s) }

// WriteJSON serializes a tree produced by ParseJSON back to JSON.
func WriteJSON(w io.Writer, t *Tree) error { return jsonconv.Write(w, t) }

// WriteJSONString serializes the tree to a JSON string.
func WriteJSONString(t *Tree) (string, error) { return jsonconv.WriteString(t) }
