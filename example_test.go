package pqgram_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"pqgram"
)

func ExampleDiff() {
	v1 := pqgram.MustParseTree("cfg(db(host port) cache(ttl))")
	v2 := pqgram.MustParseTree("cfg(db(host port user) cache(ttl) audit)")

	script, invLog, err := pqgram.Diff(v1, v2) // v1 becomes v2
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("minimal script:")
	for _, op := range script {
		fmt.Println(" ", op)
	}
	fmt.Println("log entries:", len(invLog))
	// Output:
	// minimal script:
	//   INS 7 user 2 3 2
	//   INS 8 audit 1 3 2
	// log entries: 2
}

func ExampleOptimizeLog() {
	doc := pqgram.MustParseTree("a(b c)")
	var invLog pqgram.Log
	// A churned edit feed: a node renamed three times.
	for _, op := range []pqgram.Op{
		pqgram.Rename(2, "x"), pqgram.Rename(2, "y"), pqgram.Rename(2, "z"),
	} {
		inv, _ := op.Apply(doc)
		invLog = append(invLog, inv)
	}
	opt := pqgram.OptimizeLog(doc, invLog)
	fmt.Printf("%d entries collapse to %d: %v\n", len(invLog), len(opt), opt[0])
	// Output:
	// 3 entries collapse to 1: REN 2 b
}

func ExampleForest_SimilarityJoin() {
	f := pqgram.NewForest(pqgram.DefaultParams)
	f.Add("a1", pqgram.MustParseTree("r(x y z)"))
	f.Add("a2", pqgram.MustParseTree("r(x y w)"))
	f.Add("b1", pqgram.MustParseTree("q(m(n) o)"))

	for _, p := range f.SimilarityJoin(0.7) {
		fmt.Printf("%s ~ %s (%.2f)\n", p.A, p.B, p.Distance)
	}
	// Output:
	// a1 ~ a2 (0.50)
}

func ExampleDistanceUnordered() {
	a := pqgram.MustParseTree("cfg(logging db cache)")
	b := pqgram.MustParseTree("cfg(cache db logging)") // same fields, shuffled
	fmt.Printf("ordered:   %.2f\n", pqgram.Distance(a, b, pqgram.DefaultParams))
	fmt.Printf("unordered: %.2f\n", pqgram.DistanceUnordered(a, b, pqgram.DefaultParams))
	// Output:
	// ordered:   0.62
	// unordered: 0.00
}

func ExampleParseJSON() {
	v1, _ := pqgram.ParseJSONString(`{"db": {"host": "a"}, "ttl": 60}`)
	v2, _ := pqgram.ParseJSONString(`{"ttl": 60, "db": {"host": "a"}}`) // reordered
	v3, _ := pqgram.ParseJSONString(`{"db": {"host": "b"}, "ttl": 5}`)
	p := pqgram.DefaultParams
	fmt.Printf("reordered members: %.2f\n", pqgram.Distance(v1, v2, p))
	fmt.Printf("changed values:    %.2f\n", pqgram.Distance(v1, v3, p))
	// Output:
	// reordered members: 0.00
	// changed values:    0.44
}

func ExampleStreamIndexXML() {
	// Index straight from the token stream — no tree in memory.
	xml := `<dblp><article><title>t</title></article></dblp>`
	idx, err := pqgram.StreamIndexXML(strings.NewReader(xml), pqgram.XMLOptions{}, pqgram.DefaultParams)
	if err != nil {
		log.Fatal(err)
	}
	doc, _ := pqgram.ParseXMLString(xml)
	same := idx.Equal(pqgram.BuildIndex(doc, pqgram.DefaultParams))
	fmt.Println("equals tree-based build:", same)
	// Output:
	// equals tree-based build: true
}

func ExampleCreateStore() {
	path := filepath.Join(exampleTempDir(), "corpus.pqg")
	st, err := pqgram.CreateStore(path, pqgram.DefaultParams)
	if err != nil {
		log.Fatal(err)
	}
	doc := pqgram.MustParseTree("r(a b c)")
	st.Add("doc", doc)

	// An incremental update persists only its delta record.
	inv, _ := pqgram.Rename(2, "z").Apply(doc)
	st.Update("doc", doc, pqgram.Log{inv})
	st.Close()

	// Reopen: base + journal replay.
	st2, err := pqgram.OpenStore(path)
	if err != nil {
		log.Fatal(err)
	}
	defer st2.Close()
	fmt.Println("recovered docs:", st2.Forest().Len())
	fmt.Println("index current:", st2.Forest().TreeIndex("doc").Equal(
		pqgram.BuildIndex(doc, pqgram.DefaultParams)))
	// Output:
	// recovered docs: 1
	// index current: true
}

// exampleTempDir gives examples a writable scratch directory.
func exampleTempDir() string {
	d, err := os.MkdirTemp("", "pqgram-example-*")
	if err != nil {
		log.Fatal(err)
	}
	return d
}
