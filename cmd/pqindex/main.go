// Command pqindex builds, maintains and queries persistent pq-gram indexes
// over XML documents.
//
// Usage:
//
//	pqindex build  -index idx.pqg [-p 3 -q 3] [-workers 8] [-segments [-flush-every 1000]] doc1.xml doc2.xml ...
//	pqindex add    -index idx.pqg doc.xml
//	pqindex remove -index idx.pqg -id doc.xml
//	pqindex update -index idx.pqg -id doc.xml -log changes.log doc-new.xml
//	pqindex lookup -index idx.pqg [-tau 0.5 | -top 5] query.xml [more.xml ...]
//	pqindex topk   -index idx.pqg [-k 5] [-plan metric] query.xml [more.xml ...]
//	pqindex explain -index idx.pqg {-tau 0.5 | -k 5} [-plan auto] [-timings] [-json] query.xml
//	pqindex dist   a.xml b.xml [-p 3 -q 3]
//	pqindex info   -index idx.pqg
//	pqindex compact -index idx.pqg [-metric]
//
// Documents are identified by the file path given at build/add time. The
// update subcommand implements the paper's scenario: the index is
// maintained from the old index, the new document and the log of inverse
// edit operations — the old document is not needed.
//
// Two persistent engines share the index path: the monolithic
// snapshot+journal store (the default) and, with `build -segments`, the
// segmented out-of-core store (memtable + immutable segment files; see
// STORAGE.md). Every other subcommand auto-detects the engine from the
// files on disk, and `info` reports which one a path uses.
//
// The build, update, lookup and join subcommands accept -stats, which
// attaches the metrics collector and prints an op report (counters, latency
// quantiles, stripe-load distribution) to stderr when the command finishes.
package main

import (
	"flag"
	"fmt"
	"os"

	"pqgram"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "build":
		err = runBuild(args)
	case "add":
		err = runAdd(args)
	case "remove":
		err = runRemove(args)
	case "update":
		err = runUpdate(args)
	case "lookup":
		err = runLookup(args)
	case "topk":
		err = runTopK(args)
	case "explain":
		err = runExplain(args)
	case "join":
		err = runJoin(args)
	case "dist":
		err = runDist(args)
	case "diff":
		err = runDiff(args)
	case "info":
		err = runInfo(args)
	case "compact":
		err = runCompact(args)
	case "verify":
		err = runVerify(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pqindex:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pqindex {build|add|remove|update|lookup|topk|explain|join|dist|diff|info|compact|verify} [flags] [files]")
	os.Exit(2)
}

// index is the engine-agnostic surface the subcommands run against. Both
// persistent engines implement it: the monolithic snapshot+journal
// *pqgram.Store and the segmented out-of-core *pqgram.Segmented.
type index interface {
	Forest() *pqgram.Forest
	Add(id string, t *pqgram.Tree) error
	AddAll(docs []pqgram.Doc, workers int) error
	Remove(id string) error
	Update(id string, tn *pqgram.Tree, log pqgram.Log) (pqgram.UpdateStats, error)
	Compact() error
	JournalSize() (int64, error)
	Recovery() pqgram.RecoveryInfo
	SetCollector(c *pqgram.Collector)
	Close() error
}

// openIndex opens an existing index with whichever engine created it,
// detected by probing for the segmented store's manifest file.
func openIndex(path string) (index, error) {
	if pqgram.IsSegmented(path) {
		return pqgram.OpenSegmented(path)
	}
	return pqgram.OpenStore(path)
}

// runCompact folds the write-ahead journal into the base snapshot.
func runCompact(args []string) error {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	idxPath := fs.String("index", "", "index file")
	metric := fs.Bool("metric", false, "also build the VP-tree metric index so compaction persists it (.vpt sidecar); later opens then restore it instead of rebuilding")
	fs.Parse(args)
	if *idxPath == "" {
		return fmt.Errorf("compact needs -index")
	}
	st, err := openIndex(*idxPath)
	if err != nil {
		return err
	}
	defer st.Close()
	if *metric {
		// Any metric-planned lookup builds the VP-tree; the query document
		// is irrelevant, only the build side effect matters.
		warm, err := pqgram.ParseXMLString("<warmup/>")
		if err != nil {
			return err
		}
		st.Forest().SetPlanMode(pqgram.PlanMetric)
		st.Forest().LookupTopK(warm, 1)
	}
	before, _ := st.JournalSize()
	if err := st.Compact(); err != nil {
		return err
	}
	after, _ := st.JournalSize()
	fmt.Printf("compacted: journal %d -> %d bytes\n", before, after)
	if seg, ok := st.(*pqgram.Segmented); ok {
		ss := seg.Stats()
		fmt.Printf("segments merged: now %d (%d bytes)\n", ss.Segments, ss.SegmentBytes)
	}
	if *metric && st.Forest().MetricReady() {
		if _, ok := st.(*pqgram.Store); ok {
			fmt.Println("metric index persisted (.vpt sidecar)")
		}
	}
	return nil
}

// runVerify opens the store (exercising checksums and journal recovery)
// and checks the in-memory index's internal consistency.
func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	idxPath := fs.String("index", "", "index file")
	fs.Parse(args)
	if *idxPath == "" {
		return fmt.Errorf("verify needs -index")
	}
	st, err := openIndex(*idxPath)
	if err != nil {
		return err
	}
	defer st.Close()
	if err := st.Forest().SelfCheck(); err != nil {
		return err
	}
	printRecovery(st.Recovery())
	fmt.Printf("ok: %d trees, %d pq-grams, postings consistent\n",
		st.Forest().Len(), st.Forest().Size())
	return nil
}

// printRecovery reports what OpenStore had to repair; silent when the
// journal was clean so healthy runs stay noise-free.
func printRecovery(r pqgram.RecoveryInfo) {
	if r.Records > 0 {
		fmt.Printf("recovery: replayed %d journal records (%d bytes)\n", r.Records, r.Bytes)
	}
	if r.TornBytes > 0 {
		fmt.Printf("recovery: dropped %d torn trailing bytes (interrupted append)\n", r.TornBytes)
	}
	if r.SkippedRecords > 0 {
		fmt.Printf("recovery: skipped %d records with failed checksums\n", r.SkippedRecords)
	}
	if r.StaleJournal {
		fmt.Printf("recovery: discarded stale journal (%d bytes already compacted into the base)\n", r.DiscardedBytes)
	}
	if r.JournalReset {
		fmt.Printf("recovery: reset unrecognized journal (%d bytes discarded)\n", r.DiscardedBytes)
	}
	if r.MetricRestored {
		fmt.Println("recovery: restored VP-tree metric index from its sidecar")
	}
	if r.MetricDiscarded {
		fmt.Println("recovery: discarded stale or corrupt metric sidecar (top-k lookups rebuild it lazily)")
	}
}

func parseDoc(path string) (*pqgram.Tree, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	t, err := pqgram.ParseXML(fh)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	idxPath := fs.String("index", "", "index file to create")
	p := fs.Int("p", 3, "pq-gram parameter p")
	q := fs.Int("q", 3, "pq-gram parameter q")
	workers := fs.Int("workers", 0, "parallel profiling workers (0 = GOMAXPROCS)")
	segments := fs.Bool("segments", false, "create a segmented (out-of-core) index: documents spill into immutable segment files instead of one snapshot")
	flushEvery := fs.Int("flush-every", 0, "with -segments: flush to a segment after this many documents (0 = one segment at the end)")
	stats := fs.Bool("stats", false, "print an op report (metrics snapshot) to stderr when done")
	fs.Parse(args)
	if *idxPath == "" || fs.NArg() == 0 {
		return fmt.Errorf("build needs -index and at least one document")
	}
	var st index
	var seg *pqgram.Segmented
	var err error
	if *segments {
		if seg, err = pqgram.CreateSegmented(*idxPath, pqgram.Params{P: *p, Q: *q}); err != nil {
			return err
		}
		seg.SetFlushThreshold(*flushEvery)
		st = seg
	} else if st, err = pqgram.CreateStore(*idxPath, pqgram.Params{P: *p, Q: *q}); err != nil {
		return err
	}
	defer st.Close()
	var col *pqgram.Collector
	if *stats {
		col = attachStats(st)
		defer maybeReport(*stats, col)
	}
	docs := make([]pqgram.Doc, 0, fs.NArg())
	for _, path := range fs.Args() {
		t, err := parseDoc(path)
		if err != nil {
			return err
		}
		docs = append(docs, pqgram.Doc{ID: path, Tree: t})
	}
	// Bulk build: documents are profiled concurrently, then merged into
	// the sharded index.
	if err := st.AddAll(docs, *workers); err != nil {
		return err
	}
	for _, d := range docs {
		grams, _, _ := st.Forest().TreeStats(d.ID)
		fmt.Printf("indexed %s (%d nodes, %d pq-grams)\n", d.ID, d.Tree.Size(), grams)
	}
	if seg != nil {
		// Spill whatever the flush threshold left resident; the journal
		// empties and every document is segment-served.
		if err := seg.Flush(); err != nil {
			return err
		}
		ss := seg.Stats()
		fmt.Printf("segments: %d (%d bytes)\n", ss.Segments, ss.SegmentBytes)
		return nil
	}
	// Fold the initial adds into the base snapshot.
	return st.Compact()
}

func runAdd(args []string) error {
	fs := flag.NewFlagSet("add", flag.ExitOnError)
	idxPath := fs.String("index", "", "index file")
	fs.Parse(args)
	if *idxPath == "" || fs.NArg() != 1 {
		return fmt.Errorf("add needs -index and exactly one document")
	}
	st, err := openIndex(*idxPath)
	if err != nil {
		return err
	}
	defer st.Close()
	path := fs.Arg(0)
	t, err := parseDoc(path)
	if err != nil {
		return err
	}
	if err := st.Add(path, t); err != nil {
		return err
	}
	fmt.Printf("indexed %s (%d nodes)\n", path, t.Size())
	return nil
}

func runRemove(args []string) error {
	fs := flag.NewFlagSet("remove", flag.ExitOnError)
	idxPath := fs.String("index", "", "index file")
	id := fs.String("id", "", "document id to remove")
	fs.Parse(args)
	if *idxPath == "" || *id == "" {
		return fmt.Errorf("remove needs -index and -id")
	}
	st, err := openIndex(*idxPath)
	if err != nil {
		return err
	}
	defer st.Close()
	return st.Remove(*id)
}

func runUpdate(args []string) error {
	fs := flag.NewFlagSet("update", flag.ExitOnError)
	idxPath := fs.String("index", "", "index file")
	id := fs.String("id", "", "document id to update (defaults to the document path)")
	logPath := fs.String("log", "", "log of inverse edit operations (pqgram text format)")
	idsPath := fs.String("ids", "", "node-id sidecar of the resulting document (default <doc>.ids)")
	opStats := fs.Bool("stats", false, "print an op report (metrics snapshot) to stderr when done")
	fs.Parse(args)
	if *idxPath == "" || *logPath == "" || fs.NArg() != 1 {
		return fmt.Errorf("update needs -index, -log and the resulting document")
	}
	docPath := fs.Arg(0)
	if *id == "" {
		*id = docPath
	}
	if *idsPath == "" {
		*idsPath = docPath + ".ids"
	}
	st, err := openIndex(*idxPath)
	if err != nil {
		return err
	}
	defer st.Close()
	if *opStats {
		defer maybeReport(*opStats, attachStats(st))
	}
	tn, err := parseDoc(docPath)
	if err != nil {
		return err
	}
	// Restore the node identities the log refers to (XML does not carry
	// them). Without the sidecar, parse-order identities are assumed.
	if idsFile, err := os.Open(*idsPath); err == nil {
		err2 := pqgram.ApplyXMLIDs(idsFile, tn)
		idsFile.Close()
		if err2 != nil {
			return fmt.Errorf("%s: %w", *idsPath, err2)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	lf, err := os.Open(*logPath)
	if err != nil {
		return err
	}
	ops, err := pqgram.ReadLog(lf)
	lf.Close()
	if err != nil {
		return err
	}
	stats, err := st.Update(*id, tn, ops)
	if err != nil {
		return err
	}
	js, _ := st.JournalSize()
	fmt.Printf("updated %s: %d log entries, |Δ⁺|=%d |Δ⁻|=%d in %v (journal now %d bytes)\n",
		*id, len(ops), stats.PlusGrams, stats.MinusGrams, stats.Total, js)
	return nil
}

func runLookup(args []string) error {
	fs := flag.NewFlagSet("lookup", flag.ExitOnError)
	idxPath := fs.String("index", "", "index file")
	tau := fs.Float64("tau", 0, "distance threshold (results with dist < tau)")
	top := fs.Int("top", 0, "return the k nearest documents instead of thresholding")
	workers := fs.Int("workers", 0, "parallel lookup workers for multiple queries (0 = GOMAXPROCS)")
	stats := fs.Bool("stats", false, "print an op report (metrics snapshot) to stderr when done")
	fs.Parse(args)
	if *idxPath == "" || fs.NArg() == 0 || (*tau <= 0) == (*top <= 0) {
		return fmt.Errorf("lookup needs -index, at least one query document, and exactly one of -tau/-top")
	}
	st, err := openIndex(*idxPath)
	if err != nil {
		return err
	}
	defer st.Close()
	if *stats {
		defer maybeReport(*stats, attachStats(st))
	}
	f := st.Forest()
	queries := make([]*pqgram.Tree, fs.NArg())
	for i, path := range fs.Args() {
		if queries[i], err = parseDoc(path); err != nil {
			return err
		}
	}
	var results [][]pqgram.Match
	if *top > 0 {
		results = make([][]pqgram.Match, len(queries))
		for i, q := range queries {
			results[i] = f.LookupTop(q, *top)
		}
	} else {
		// Batched lookup: queries are profiled and matched concurrently.
		results = f.LookupMany(queries, *tau, *workers)
	}
	for i, matches := range results {
		if len(queries) > 1 {
			fmt.Printf("%s:\n", fs.Arg(i))
		}
		for _, m := range matches {
			fmt.Printf("%.4f  %s\n", m.Distance, m.TreeID)
		}
		if len(matches) == 0 {
			fmt.Println("no matches")
		}
	}
	return nil
}

// runTopK answers k-nearest-neighbour queries. Unlike `lookup -top`,
// which leaves the candidate strategy to the planner's default, it
// exposes the plan choice: -plan metric descends the VP-tree metric
// index (restored from the .vpt sidecar when the store has one, built
// lazily otherwise), -plan exhaustive scores every document through the
// postings, -plan auto lets the planner decide per query. Rankings are
// identical in every mode; only the work differs.
func runTopK(args []string) error {
	fs := flag.NewFlagSet("topk", flag.ExitOnError)
	idxPath := fs.String("index", "", "index file")
	k := fs.Int("k", 5, "number of nearest documents to return")
	plan := fs.String("plan", "metric", "candidate strategy: metric, exhaustive or auto")
	stats := fs.Bool("stats", false, "print an op report (metrics snapshot) to stderr when done")
	fs.Parse(args)
	if *idxPath == "" || fs.NArg() == 0 || *k < 1 {
		return fmt.Errorf("topk needs -index, -k >= 1 and at least one query document")
	}
	st, err := openIndex(*idxPath)
	if err != nil {
		return err
	}
	defer st.Close()
	if *stats {
		defer maybeReport(*stats, attachStats(st))
	}
	f := st.Forest()
	switch *plan {
	case "metric":
		f.SetPlanMode(pqgram.PlanMetric)
	case "exhaustive":
		f.SetPlanMode(pqgram.PlanExhaustive)
	case "auto":
		f.SetPlanMode(pqgram.PlanAuto)
	default:
		return fmt.Errorf("topk: unknown -plan %q (want metric, exhaustive or auto)", *plan)
	}
	for i, path := range fs.Args() {
		q, err := parseDoc(path)
		if err != nil {
			return err
		}
		if fs.NArg() > 1 {
			fmt.Printf("%s:\n", path)
		}
		matches := f.LookupTopK(q, *k)
		for _, m := range matches {
			fmt.Printf("%.4f  %s\n", m.Distance, m.TreeID)
		}
		if len(matches) == 0 {
			fmt.Println("no matches")
		}
		if i == 0 && *plan == "metric" && !f.MetricReady() {
			// Can only happen if the build was raced away by Close;
			// surface it rather than silently falling back forever.
			fmt.Fprintln(os.Stderr, "topk: metric index not built; answered by exhaustive scan")
		}
	}
	return nil
}

func runJoin(args []string) error {
	fs := flag.NewFlagSet("join", flag.ExitOnError)
	idxPath := fs.String("index", "", "index file")
	tau := fs.Float64("tau", 0.5, "distance threshold (pairs with dist < tau)")
	workers := fs.Int("workers", 0, "parallel join workers (0 = GOMAXPROCS)")
	stats := fs.Bool("stats", false, "print an op report (metrics snapshot) to stderr when done")
	fs.Parse(args)
	if *idxPath == "" {
		return fmt.Errorf("join needs -index")
	}
	st, err := openIndex(*idxPath)
	if err != nil {
		return err
	}
	defer st.Close()
	if *stats {
		defer maybeReport(*stats, attachStats(st))
	}
	pairs := st.Forest().SimilarityJoinWorkers(*tau, *workers)
	for _, p := range pairs {
		fmt.Printf("%.4f  %s  %s\n", p.Distance, p.A, p.B)
	}
	if len(pairs) == 0 {
		fmt.Println("no pairs")
	}
	return nil
}

func runDist(args []string) error {
	fs := flag.NewFlagSet("dist", flag.ExitOnError)
	p := fs.Int("p", 3, "pq-gram parameter p")
	q := fs.Int("q", 3, "pq-gram parameter q")
	ted := fs.Bool("ted", false, "also compute the exact tree edit distance (slow)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("dist needs exactly two documents")
	}
	a, err := parseDoc(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := parseDoc(fs.Arg(1))
	if err != nil {
		return err
	}
	fmt.Printf("pq-gram distance (p=%d,q=%d): %.4f\n", *p, *q,
		pqgram.Distance(a, b, pqgram.Params{P: *p, Q: *q}))
	if *ted {
		fmt.Printf("tree edit distance: %d\n", pqgram.TreeEditDistance(a, b))
	}
	return nil
}

// runDiff recovers a minimal edit script between two document versions and
// writes the maintenance inputs: the log, and (optionally) the resulting
// document with its node-identity sidecar, ready for `pqindex update`.
func runDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	logPath := fs.String("log", "", "write the log of inverse operations here")
	outPath := fs.String("out", "", "write the resulting document (+ .ids sidecar) here")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("diff needs exactly two documents (old new)")
	}
	oldDoc, err := parseDoc(fs.Arg(0))
	if err != nil {
		return err
	}
	newDoc, err := parseDoc(fs.Arg(1))
	if err != nil {
		return err
	}
	script, log, err := pqgram.Diff(oldDoc, newDoc)
	if err != nil {
		return err
	}
	fmt.Printf("minimal edit script: %d operations (tree edit distance)\n", len(script))
	for _, op := range script {
		fmt.Println(" ", op)
	}
	if *logPath != "" {
		lf, err := os.Create(*logPath)
		if err != nil {
			return err
		}
		defer lf.Close()
		if err := pqgram.WriteLog(lf, log); err != nil {
			return err
		}
	}
	if *outPath != "" {
		of, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		if err := pqgram.WriteXML(of, oldDoc); err != nil {
			of.Close()
			return err
		}
		if err := of.Close(); err != nil {
			return err
		}
		idf, err := os.Create(*outPath + ".ids")
		if err != nil {
			return err
		}
		defer idf.Close()
		if err := pqgram.WriteXMLIDs(idf, oldDoc); err != nil {
			return err
		}
	}
	return nil
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	idxPath := fs.String("index", "", "index file")
	fs.Parse(args)
	if *idxPath == "" {
		return fmt.Errorf("info needs -index")
	}
	st, err := openIndex(*idxPath)
	if err != nil {
		return err
	}
	defer st.Close()
	f := st.Forest()
	sz, err := pqgram.ForestSize(f)
	if err != nil {
		return err
	}
	js, _ := st.JournalSize()
	printRecovery(st.Recovery())
	pr := f.Params()
	fmt.Printf("parameters: p=%d q=%d\n", pr.P, pr.Q)
	fmt.Printf("trees: %d, pq-grams: %d, snapshot: %d bytes, journal: %d bytes\n", f.Len(), f.Size(), sz, js)
	if seg, ok := st.(*pqgram.Segmented); ok {
		ss := seg.Stats()
		fmt.Printf("engine: segmented — %d segments (%d bytes), %d resident docs, %d evicted docs, %d pending tombstones, next seq %d\n",
			ss.Segments, ss.SegmentBytes, ss.ResidentDocs, ss.EvictedDocs, ss.PendingTombstones, ss.NextSeq)
	}
	for _, id := range f.IDs() {
		grams, distinct, _ := f.TreeStats(id)
		fmt.Printf("  %-40s %8d pq-grams (%d distinct)\n", id, grams, distinct)
	}
	return nil
}
