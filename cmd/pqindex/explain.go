package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pqgram"
)

// runExplain runs one query with tracing forced on and renders the plan
// decision plus the per-stage work counters as an indented tree (EXPLAIN
// ANALYZE-style). Without -timings the output carries only work counters
// and is byte-identical across runs for the same index, query and plan
// mode, so it is safe to diff in tests and docs; -timings appends each
// stage's wall time. -json emits the structured ExplainResult instead.
func runExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	idxPath := fs.String("index", "", "index file")
	tau := fs.Float64("tau", 0, "threshold lookup: explain dist < tau")
	k := fs.Int("k", 0, "top-k lookup: explain the k nearest")
	plan := fs.String("plan", "auto", "candidate strategy: auto, exhaustive, pruned or metric")
	timings := fs.Bool("timings", false, "include per-stage wall time (output no longer run-to-run stable)")
	asJSON := fs.Bool("json", false, "emit the structured ExplainResult as JSON")
	fs.Parse(args)
	if *idxPath == "" || fs.NArg() != 1 || (*tau <= 0) == (*k <= 0) {
		return fmt.Errorf("explain needs -index, exactly one query document, and exactly one of -tau/-k")
	}
	st, err := openIndex(*idxPath)
	if err != nil {
		return err
	}
	defer st.Close()
	f := st.Forest()
	switch *plan {
	case "auto":
		f.SetPlanMode(pqgram.PlanAuto)
	case "exhaustive":
		f.SetPlanMode(pqgram.PlanExhaustive)
	case "pruned":
		f.SetPlanMode(pqgram.PlanPruned)
	case "metric":
		f.SetPlanMode(pqgram.PlanMetric)
	default:
		return fmt.Errorf("explain: unknown -plan %q (want auto, exhaustive, pruned or metric)", *plan)
	}
	q, err := parseDoc(fs.Arg(0))
	if err != nil {
		return err
	}
	var res pqgram.ExplainResult
	if *k > 0 {
		res = f.ExplainTopK(q, *k)
	} else {
		res = f.ExplainLookup(q, *tau)
	}
	if *asJSON {
		if !*timings {
			res.Trace = res.Trace.StripDurations()
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Print(pqgram.FormatExplain(res, *timings))
	for _, m := range res.Matches {
		fmt.Printf("%.4f  %s\n", m.Distance, m.TreeID)
	}
	return nil
}
