package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"pqgram"
)

// attachStats wires a collector into the store (covering its forest and the
// journal) and the global profiling metrics, returning the collector. Used
// by the subcommands that accept -stats.
func attachStats(st index) *pqgram.Collector {
	col := pqgram.NewCollector()
	st.SetCollector(col)
	pqgram.SetProfileCollector(col)
	return col
}

// printOpReport renders the collector's snapshot as an aligned text report:
// counters and gauges first, then one line per latency histogram with
// count, mean and tail quantiles, then computed values (stripe load).
func printOpReport(w io.Writer, col *pqgram.Collector) error {
	snap := col.Snapshot()
	fmt.Fprintln(w, "-- op report --")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(tw, "%s\t%d\n", name, snap.Counters[name])
	}
	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(tw, "%s\t%d\n", name, snap.Gauges[name])
	}
	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		if h.Count == 0 {
			continue
		}
		// Histograms named *_ns hold durations in nanoseconds; everything
		// else (bag sizes, ...) is a plain quantity.
		if strings.HasSuffix(name, "_ns") {
			fmt.Fprintf(tw, "%s\tn=%d mean=%s p50=%s p95=%s p99=%s max=%s\n",
				name, h.Count,
				time.Duration(int64(h.Mean)), time.Duration(h.P50),
				time.Duration(h.P95), time.Duration(h.P99), time.Duration(h.Max))
		} else {
			fmt.Fprintf(tw, "%s\tn=%d mean=%.1f p50=%d p95=%d p99=%d max=%d\n",
				name, h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max)
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	names = names[:0]
	for name := range snap.Values {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		js, err := json.Marshal(snap.Values[name])
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s %s\n", name, js)
	}
	return nil
}

// maybeReport prints the op report to stderr when -stats was given.
func maybeReport(stats bool, col *pqgram.Collector) error {
	if !stats || col == nil {
		return nil
	}
	return printOpReport(os.Stderr, col)
}
