// Command pqbench regenerates the tables and figures of the paper's
// evaluation section (§9) on synthetic workloads, and runs an instrumented
// micro suite that snapshots the perf trajectory.
//
// Usage:
//
//	pqbench -exp all                 # everything, default scale
//	pqbench -exp fig13-lookup        # Figure 13 (left)
//	pqbench -exp fig13-update        # Figure 13 (right)
//	pqbench -exp fig14-size          # Figure 14 (left)
//	pqbench -exp fig14-update        # Figure 14 (right)
//	pqbench -exp table2              # Table 2
//	pqbench -exp ablate-index        # §8.1 anchor-index ablation
//	pqbench -exp ablate-mix          # edit-mix ablation
//	pqbench -exp ablate-pq           # (p,q) quality ablation
//	pqbench -exp pruning             # candidate-pruning planner sweep
//	pqbench -exp pruning-smoke       # CI guard: pruned must stay within 2x
//	pqbench -exp topk                # top-k: VP-tree metric index vs exhaustive
//	pqbench -exp serve               # serving tier: closed-loop mixed read/write load
//	pqbench -exp serve-smoke         # CI guard: ~1s load run; cache must hit, no drops
//	pqbench -exp segments            # out-of-core lookups: memtable + segments vs in-RAM
//	pqbench -exp segments-smoke      # CI guard: bloom must skip, median lookup within 3x of in-RAM
//	pqbench -exp micro               # instrumented end-to-end micro suite
//
// The -scale flag multiplies the default workload sizes (0.1 for a quick
// smoke run, 4 for a long one); -seed offsets every workload's generator
// seed (0 reproduces the historical workloads). The micro suite sizes its
// document collection with -n and writes a machine-readable report
// (ns/op + metric counters) to the -json path; `make bench-json` uses that
// to produce BENCH_pr2.json. Every figure experiment cross-checks the
// incremental results against full rebuilds and panics on divergence. Any
// failure exits non-zero.
package main

import (
	"flag"
	"fmt"
	"os"

	"pqgram/internal/bench"
	"pqgram/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (see package comment)")
	scale := flag.Float64("scale", 1, "workload scale factor for the figure experiments")
	n := flag.Int("n", 400, "micro suite workload size (documents)")
	seed := flag.Int64("seed", 0, "workload seed offset (0 = historical defaults)")
	jsonPath := flag.String("json", "", "write the micro suite's machine-readable report here")
	flag.Parse()
	if err := run(*exp, *scale, *n, *seed, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "pqbench:", err)
		os.Exit(1)
	}
}

func run(exp string, scale float64, n int, seed int64, jsonPath string) error {
	bench.SetSeed(seed)
	s := func(v int) int {
		out := int(float64(v) * scale)
		if out < 1 {
			out = 1
		}
		return out
	}
	if exp == "pruning-smoke" {
		// The CI guard: not part of -exp all, non-zero exit when the
		// pruned planner path regresses past 2x of the exhaustive one.
		res, err := bench.PruningSmoke(2)
		if res != nil {
			if perr := res.Print(os.Stdout); perr != nil {
				return perr
			}
		}
		return err
	}
	if exp == "serve-smoke" {
		// The serving-tier CI guard: a ~1s closed-loop load run, failing
		// on a dropped response, a request error, or a repeated-query
		// phase that never hits the result cache. Not part of -exp all.
		res, err := bench.ServeSmoke()
		if res != nil {
			if perr := res.Print(os.Stdout); perr != nil {
				return perr
			}
		}
		return err
	}
	if exp == "segments-smoke" {
		// The storage-engine CI guard: a 256-doc corpus over 4 segments
		// must answer byte-identically to the in-RAM baseline, skip
		// segment probes through the bloom filters, keep fewer grams
		// resident, and keep the median lookup within 3x of the in-RAM
		// baseline (wide enough to absorb CI timing noise, tight enough
		// to catch an order-of-magnitude tier regression).
		// Not part of -exp all.
		res, err := bench.SegmentsSmoke(3)
		if res != nil {
			if perr := res.Print(os.Stdout); perr != nil {
				return perr
			}
		}
		return err
	}
	experiments := []struct {
		name string
		run  func() (*bench.Result, error)
	}{
		{"fig13-lookup", func() (*bench.Result, error) {
			return bench.Fig13Lookup(s(600000), []int{32, 256, 2048}, 0.7), nil
		}},
		{"fig13-update", func() (*bench.Result, error) {
			return bench.Fig13Update([]int{s(50000), s(100000), s(200000), s(400000), s(800000)}, 100), nil
		}},
		{"fig14-size", func() (*bench.Result, error) {
			return bench.Fig14Size([]int{s(25000), s(50000), s(100000), s(200000), s(400000)}), nil
		}},
		{"fig14-update", func() (*bench.Result, error) {
			return bench.Fig14Update(s(400000), []int{1, 4, 16, 64, 256, 1024, 4096}), nil
		}},
		{"table2", func() (*bench.Result, error) {
			return bench.Table2(s(400000), []int{1, 10, 100, 1000}), nil
		}},
		{"ablate-index", func() (*bench.Result, error) {
			return bench.AblationAnchorIndex(s(200000), 1000), nil
		}},
		{"ablate-mix", func() (*bench.Result, error) {
			return bench.AblationOpMix(s(200000), 500), nil
		}},
		{"ablate-pq", func() (*bench.Result, error) {
			return bench.AblationPQ(s(150), 40), nil
		}},
		{"pruning", func() (*bench.Result, error) {
			return firstErr(bench.Pruning(s(256), s(240000), 6, 3, bench.DefaultPruningTaus))
		}},
		{"topk", func() (*bench.Result, error) {
			return firstErr(bench.TopK(16, 16, s(240000), 6, 3, bench.DefaultTopKKs))
		}},
		{"serve", func() (*bench.Result, error) {
			res, phases, err := bench.Serve(s(256), 8, s(256))
			if err != nil {
				return nil, err
			}
			if jsonPath != "" {
				rep := bench.NewReport(s(256), seed)
				rep.Serve = phases
				if err := rep.WriteFile(jsonPath); err != nil {
					return nil, err
				}
				fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
			}
			return res, nil
		}},
		{"segments", func() (*bench.Result, error) {
			return firstErr(bench.Segments(s(256), s(64000), 6, 3, 0.5, bench.DefaultSegmentsFlushEvery))
		}},
		{"micro", func() (*bench.Result, error) {
			col := obs.NewCollector()
			res, rep, err := bench.Micro(n, seed, col)
			if err != nil {
				return nil, err
			}
			if jsonPath != "" {
				// The machine-readable report also carries the pruning
				// and top-k sweeps, so one artifact records the op
				// timings and both planner speedup curves.
				pres, points, err := bench.Pruning(128, 120000, 6, 3, bench.DefaultPruningTaus)
				if err != nil {
					return nil, err
				}
				rep.Pruning = points
				tres, tpoints, err := bench.TopK(16, 16, 240000, 6, 3, bench.DefaultTopKKs)
				if err != nil {
					return nil, err
				}
				rep.TopK = tpoints
				sres, sphases, err := bench.Serve(256, 8, 256)
				if err != nil {
					return nil, err
				}
				rep.Serve = sphases
				gres, gpoints, err := bench.Segments(256, 64000, 6, 3, 0.5, bench.DefaultSegmentsFlushEvery)
				if err != nil {
					return nil, err
				}
				rep.Segments = gpoints
				if err := rep.WriteFile(jsonPath); err != nil {
					return nil, err
				}
				fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
				if err := pres.Print(os.Stdout); err != nil {
					return nil, err
				}
				if err := tres.Print(os.Stdout); err != nil {
					return nil, err
				}
				if err := sres.Print(os.Stdout); err != nil {
					return nil, err
				}
				if err := gres.Print(os.Stdout); err != nil {
					return nil, err
				}
			}
			return res, nil
		}},
	}
	known := false
	for _, e := range experiments {
		if exp == "all" || exp == e.name {
			known = true
			res, err := e.run()
			if err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
			if err := res.Print(os.Stdout); err != nil {
				return err
			}
		}
	}
	if !known {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// firstErr adapts three-valued experiment runners (result, data, error) to
// the (result, error) shape of the experiments table.
func firstErr[T any](res *bench.Result, _ T, err error) (*bench.Result, error) {
	return res, err
}
