// Command pqbench regenerates the tables and figures of the paper's
// evaluation section (§9) on synthetic workloads.
//
// Usage:
//
//	pqbench -exp all                 # everything, default scale
//	pqbench -exp fig13-lookup        # Figure 13 (left)
//	pqbench -exp fig13-update        # Figure 13 (right)
//	pqbench -exp fig14-size          # Figure 14 (left)
//	pqbench -exp fig14-update        # Figure 14 (right)
//	pqbench -exp table2              # Table 2
//	pqbench -exp ablate-index        # §8.1 anchor-index ablation
//	pqbench -exp ablate-mix          # edit-mix ablation
//	pqbench -exp ablate-pq           # (p,q) quality ablation
//
// The -scale flag multiplies the default workload sizes (0.1 for a quick
// smoke run, 4 for a long one). Every experiment cross-checks the
// incremental results against full rebuilds and panics on divergence.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pqgram/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (see package comment)")
	scale := flag.Float64("scale", 1, "workload scale factor")
	flag.Parse()

	s := func(n int) int {
		v := int(float64(n) * *scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	run := func(name string, f func() *bench.Result) {
		if *exp != "all" && *exp != name {
			return
		}
		res := f()
		if err := res.Print(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "pqbench:", err)
			os.Exit(1)
		}
	}

	run("fig13-lookup", func() *bench.Result {
		return bench.Fig13Lookup(s(600000), []int{32, 256, 2048}, 0.7)
	})
	run("fig13-update", func() *bench.Result {
		return bench.Fig13Update([]int{s(50000), s(100000), s(200000), s(400000), s(800000)}, 100)
	})
	run("fig14-size", func() *bench.Result {
		return bench.Fig14Size([]int{s(25000), s(50000), s(100000), s(200000), s(400000)})
	})
	run("fig14-update", func() *bench.Result {
		return bench.Fig14Update(s(400000), []int{1, 4, 16, 64, 256, 1024, 4096})
	})
	run("table2", func() *bench.Result {
		return bench.Table2(s(400000), []int{1, 10, 100, 1000})
	})
	run("ablate-index", func() *bench.Result {
		return bench.AblationAnchorIndex(s(200000), 1000)
	})
	run("ablate-mix", func() *bench.Result {
		return bench.AblationOpMix(s(200000), 500)
	})
	run("ablate-pq", func() *bench.Result {
		return bench.AblationPQ(s(150), 40)
	})

	if *exp != "all" && !strings.HasPrefix(*exp, "fig") && !strings.HasPrefix(*exp, "table") && !strings.HasPrefix(*exp, "ablate") {
		fmt.Fprintf(os.Stderr, "pqbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
