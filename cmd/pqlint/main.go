// Command pqlint runs the repository's static-analysis suite: ten
// analyzers that enforce the crash-safety, concurrency and determinism
// invariants the index's correctness arguments rest on (see internal/lint
// and the "Enforced invariants" section of ARCHITECTURE.md). It is built
// only on the standard library — the module keeps zero external
// dependencies — and is the `make lint` gate of `make check` and CI.
//
// Usage:
//
//	pqlint [-only a,b] [-skip a,b] [-json] [-list] [packages...]
//
// Packages default to ./... relative to the enclosing module. The exit
// code is 0 when the tree is clean, 1 when any finding is reported, and
// 2 on usage or load errors. Findings on a line can be suppressed by a
// //pqlint:allow <analyzer> comment on that line or the line above; a
// //pqlint:allowfile <analyzer> comment suppresses the named analyzers
// for its whole file. Loader failures (syntax errors, unresolvable
// imports) are reported with their file:line position.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"pqgram/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pqlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		only     = fs.String("only", "", "comma-separated analyzers to run (default: all)")
		skip     = fs.String("skip", "", "comma-separated analyzers to skip")
		jsonOut  = fs.Bool("json", false, "emit findings as a JSON array")
		list     = fs.Bool("list", false, "list the analyzers and exit")
		moduleDr = fs.String("C", ".", "directory whose enclosing module is linted")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: pqlint [flags] [packages...]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(stderr, "  %-20s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*only, *skip)
	if err != nil {
		fmt.Fprintln(stderr, "pqlint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(*moduleDr)
	if err != nil {
		fmt.Fprintln(stderr, "pqlint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "pqlint:", err)
		return 2
	}

	diags := lint.Run(pkgs, analyzers)
	for i := range diags {
		if rel, err := relTo(loader.ModuleDir, diags[i].File); err == nil {
			diags[i].File = rel
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "pqlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stdout, "pqlint: %d finding(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func selectAnalyzers(only, skip string) ([]*lint.Analyzer, error) {
	analyzers := lint.All()
	if only != "" {
		chosen, err := lint.ByName(splitNames(only))
		if err != nil {
			return nil, err
		}
		analyzers = chosen
	}
	if skip != "" {
		skipped, err := lint.ByName(splitNames(skip))
		if err != nil {
			return nil, err
		}
		drop := make(map[string]bool)
		for _, a := range skipped {
			drop[a.Name] = true
		}
		kept := analyzers[:0:0]
		for _, a := range analyzers {
			if !drop[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}
	if len(analyzers) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return analyzers, nil
}

func splitNames(s string) []string {
	var out []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

func relTo(base, path string) (string, error) {
	rel, err := filepath.Rel(base, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path, fmt.Errorf("outside module")
	}
	return rel, nil
}
