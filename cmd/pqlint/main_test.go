package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pqgram/internal/lint"
)

// TestSelfLint is the gate the tree must hold: pqlint over the whole
// module exits 0. Any invariant regression fails this test before it
// fails CI.
func TestSelfLint(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-C", "../..", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("pqlint ./... = exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, &out, &errb)
	}
}

// TestFixtureFindings proves the driver reports findings with module-
// relative file positions and a non-zero exit on a dirty package.
func TestFixtureFindings(t *testing.T) {
	const fixture = "./internal/lint/testdata/src/internal/store/errcheckfix"
	var out, errb bytes.Buffer
	code := run([]string{"-C", "../..", "-json", fixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("pqlint %s = exit %d, want 1\nstderr:\n%s", fixture, code, &errb)
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("bad -json output: %v\n%s", err, &out)
	}
	if len(diags) != 5 {
		t.Fatalf("got %d findings, want 5:\n%s", len(diags), &out)
	}
	const wantFile = "internal/lint/testdata/src/internal/store/errcheckfix/errcheckfix.go"
	lastLine := 0
	for _, d := range diags {
		if d.Analyzer != "errcheck-durability" {
			t.Errorf("finding by %q, want errcheck-durability", d.Analyzer)
		}
		if d.File != wantFile {
			t.Errorf("finding in %q, want module-relative %q", d.File, wantFile)
		}
		if d.Line <= lastLine {
			t.Errorf("findings not sorted by line: %d after %d", d.Line, lastLine)
		}
		lastLine = d.Line
	}
}

// TestOnlySkipsOtherAnalyzers: with -only detcheck the errcheck fixture
// is clean, so selection really restricts the run.
func TestOnlySkipsOtherAnalyzers(t *testing.T) {
	const fixture = "./internal/lint/testdata/src/internal/store/errcheckfix"
	var out, errb bytes.Buffer
	if code := run([]string{"-C", "../..", "-only", "detcheck", fixture}, &out, &errb); code != 0 {
		t.Fatalf("pqlint -only detcheck %s = exit %d, want 0\nstdout:\n%s\nstderr:\n%s", fixture, code, &out, &errb)
	}
}

func TestListFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("pqlint -list = exit %d, want 0", code)
	}
	for _, a := range lint.All() {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing %q:\n%s", a.Name, &out)
		}
	}
}

func TestFlagErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &out, &errb); code != 2 {
		t.Errorf("pqlint -only nosuch = exit %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{"-only", "fsiocheck", "-skip", "fsiocheck"}, &out, &errb); code != 2 {
		t.Errorf("pqlint -only fsiocheck -skip fsiocheck = exit %d, want 2", code)
	}
}

func TestSplitNames(t *testing.T) {
	got := splitNames(" lockcheck, ,atomiccheck ,,goroutinecheck")
	want := []string{"lockcheck", "atomiccheck", "goroutinecheck"}
	if len(got) != len(want) {
		t.Fatalf("splitNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("splitNames[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestOnlyCommaList: a comma-separated -only selects all named
// analyzers, and -skip removes from that selection.
func TestOnlyCommaList(t *testing.T) {
	const fixture = "./internal/lint/testdata/src/internal/store/errcheckfix"
	var out, errb bytes.Buffer
	code := run([]string{"-C", "../..", "-only", "detcheck, errcheck-durability", fixture}, &out, &errb)
	if code != 1 {
		t.Fatalf("pqlint -only detcheck,errcheck-durability = exit %d, want 1\nstderr:\n%s", code, &errb)
	}
	if !strings.Contains(out.String(), "errcheck-durability") {
		t.Errorf("comma-separated -only did not run errcheck-durability:\n%s", &out)
	}
	out.Reset()
	code = run([]string{"-C", "../..", "-only", "detcheck,errcheck-durability", "-skip", "errcheck-durability", fixture}, &out, &errb)
	if code != 0 {
		t.Fatalf("with -skip errcheck-durability exit %d, want 0\nstdout:\n%s", code, &out)
	}
}

// TestLoadErrorPositioned: a module with a syntax error exits 2 and the
// stderr message carries the file:line position of the bad token.
func TestLoadErrorPositioned(t *testing.T) {
	dir := t.TempDir()
	writeFile := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("go.mod", "module brokenmod\n\ngo 1.21\n")
	writeFile("bad.go", "package bad\n\nfunc f( {\n")
	var out, errb bytes.Buffer
	if code := run([]string{"-C", dir, "."}, &out, &errb); code != 2 {
		t.Fatalf("pqlint on broken module = exit %d, want 2\nstderr:\n%s", code, &errb)
	}
	if !strings.Contains(errb.String(), "bad.go:3:") {
		t.Errorf("stderr %q does not carry the file:line position", errb.String())
	}
}
