// pqserve is the production pq-gram similarity service: the
// internal/serve tier — request batching, an epoch-invalidated result
// cache, and latency-driven admission control — over an in-memory or
// journaled persistent index.
//
// Typical invocations:
//
//	pqserve                          in-memory index on :8080, cache of 1024 results
//	pqserve -index idx.pq -sync      durable index, fsync every mutation
//	pqserve -index idx.pq -segments -flush-every 4096
//	                                 segmented (out-of-core) index: mutated docs
//	                                 spill to immutable segment files every 4096
//	                                 writes; lookups merge RAM and segments
//	pqserve -p95-budget 25ms         shed (429 + Retry-After) when p95 crosses 25ms
//	pqserve -cache 0 -max-inflight 0 raw forest behavior: no cache, no admission
//
// An existing index is opened with the engine that created it: pqserve
// probes for <path>.manifest and picks the segmented opener when it
// exists, so -segments only matters when creating a new index.
//
// The HTTP surface is documented in internal/serve/http.go;
// examples/server exposes the same endpoints with a guided demo.
package main

import (
	"flag"
	"io"
	"log"
	"log/slog"
	"net/http"
	"os"
	"time"

	"pqgram/internal/forest"
	"pqgram/internal/obs"
	"pqgram/internal/profile"
	"pqgram/internal/serve"
	"pqgram/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	index := flag.String("index", "", "back the service with a persistent store at this path (journaled; survives restarts)")
	syncWrites := flag.Bool("sync", false, "with -index: fsync every journaled mutation before acknowledging it")
	segments := flag.Bool("segments", false, "with -index: create a segmented (out-of-core) store; existing indexes auto-detect their engine")
	flushEvery := flag.Int("flush-every", 4096, "with -segments: flush the memtable to a segment after this many dirty documents (0 = never automatically)")
	plan := flag.String("plan", "auto", "query planner mode: auto, exhaustive, pruned or metric")
	cacheSize := flag.Int("cache", 1024, "result-cache capacity in entries (0 disables)")
	maxInflight := flag.Int("max-inflight", 64, "concurrent lookups executing at once (0 = unlimited)")
	maxQueue := flag.Int("max-queue", 256, "lookups allowed to wait for an in-flight slot before shedding")
	p95Budget := flag.Duration("p95-budget", 0, "shed new lookups while windowed p95 latency exceeds this (0 disables)")
	budgetWindow := flag.Duration("budget-window", time.Second, "rotation period of the p95 backpressure window")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint attached to shed responses")
	quiet := flag.Bool("quiet", false, "suppress per-request logging")
	flag.Parse()

	planModes := map[string]forest.PlanMode{
		"auto": forest.PlanAuto, "exhaustive": forest.PlanExhaustive,
		"pruned": forest.PlanPruned, "metric": forest.PlanMetric,
	}
	planMode, ok := planModes[*plan]
	if !ok {
		log.Fatalf("unknown -plan %q (want auto, exhaustive, pruned or metric)", *plan)
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *quiet {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}

	col := obs.NewCollector()
	col.SetLogger(logger)
	profile.SetCollector(col)

	var f *forest.Index
	var backend serve.Backend
	switch {
	case *index != "" && (*segments || store.IsSegmented(*index)):
		var st *store.Segmented
		var err error
		if store.IsSegmented(*index) {
			st, err = store.OpenSegmented(*index)
		} else if _, serr := os.Stat(*index); serr == nil {
			log.Fatalf("index %s exists but is not segmented; drop -segments to open it", *index)
		} else {
			st, err = store.CreateSegmented(*index, profile.Default)
		}
		if err != nil {
			log.Fatalf("opening index %s: %v", *index, err)
		}
		defer st.Close()
		st.SetSync(*syncWrites)
		st.SetFlushThreshold(*flushEvery)
		st.SetCollector(col)
		r, ss := st.Recovery(), st.Stats()
		logger.Info("index opened", "path", *index, "engine", "segmented",
			"docs", st.Forest().Len(),
			"segments", ss.Segments,
			"segment_bytes", ss.SegmentBytes,
			"replayed_records", r.Records,
			"torn_bytes", r.TornBytes,
			"skipped_records", r.SkippedRecords,
			"stale_journal", r.StaleJournal)
		f = st.Forest()
		backend = st
	case *index != "":
		var st *store.Store
		var err error
		if _, serr := os.Stat(*index); os.IsNotExist(serr) {
			st, err = store.CreateStore(*index, profile.Default)
		} else {
			st, err = store.OpenStore(*index)
		}
		if err != nil {
			log.Fatalf("opening index %s: %v", *index, err)
		}
		defer st.Close()
		st.SetSync(*syncWrites)
		st.SetCollector(col)
		r := st.Recovery()
		logger.Info("index opened", "path", *index, "engine", "snapshot",
			"docs", st.Forest().Len(),
			"replayed_records", r.Records,
			"torn_bytes", r.TornBytes,
			"skipped_records", r.SkippedRecords,
			"stale_journal", r.StaleJournal)
		f = st.Forest()
		backend = st
	default:
		f = forest.New(profile.Default)
		f.SetCollector(col)
	}
	f.SetPlanMode(planMode)

	srv := serve.New(f, backend, serve.Config{
		CacheSize:    *cacheSize,
		MaxInFlight:  *maxInflight,
		MaxQueue:     *maxQueue,
		P95Budget:    *p95Budget,
		BudgetWindow: *budgetWindow,
		RetryAfter:   *retryAfter,
		Logger:       logger,
	}, col)

	log.Printf("pqserve listening on %s (cache=%d inflight=%d queue=%d p95-budget=%s)",
		*addr, *cacheSize, *maxInflight, *maxQueue, *p95Budget)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
