// Command xgen generates the synthetic workloads of the paper's
// experiments: XMark-shaped auction documents (substituting the XML
// benchmark's xmlgen), DBLP-shaped bibliographies, and random edit scripts
// with their inverse logs.
//
// Usage:
//
//	xgen doc  -kind xmark|dblp -nodes 10000 -seed 1 -o doc.xml
//	xgen edit -seed 1 -ops 100 [-mix ins,del,ren weights "1,1,1"] \
//	          -in doc.xml -out doc-edited.xml -log changes.log
//
// The edit subcommand applies a random script to the input document,
// writes the resulting document and the log of inverse operations — the
// exact inputs of `pqindex update`.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"pqgram"
	"pqgram/internal/gen"
	"pqgram/internal/tree"
	"pqgram/internal/xmlconv"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "doc":
		err = runDoc(os.Args[2:])
	case "edit":
		err = runEdit(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xgen:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: xgen {doc|edit} [flags]")
	os.Exit(2)
}

func writeDoc(path string, t *tree.Tree) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	return xmlconv.Write(fh, t)
}

func runDoc(args []string) error {
	fs := flag.NewFlagSet("doc", flag.ExitOnError)
	kind := fs.String("kind", "xmark", "document shape: xmark or dblp")
	nodes := fs.Int("nodes", 10000, "approximate node count")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	var t *tree.Tree
	switch *kind {
	case "xmark":
		t = gen.XMark(*seed, *nodes)
	case "dblp":
		t = gen.DBLP(*seed, *nodes)
	default:
		return fmt.Errorf("unknown kind %q", *kind)
	}
	if *out == "" {
		return xmlconv.Write(os.Stdout, t)
	}
	if err := writeDoc(*out, t); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d nodes\n", *out, t.Size())
	return nil
}

func runEdit(args []string) error {
	fs := flag.NewFlagSet("edit", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "script seed")
	ops := fs.Int("ops", 100, "number of edit operations")
	mixStr := fs.String("mix", "1,1,1", "insert,delete,rename weights")
	in := fs.String("in", "", "input document")
	out := fs.String("out", "", "resulting document")
	logPath := fs.String("log", "", "log of inverse operations")
	fs.Parse(args)
	if *in == "" || *out == "" || *logPath == "" {
		return fmt.Errorf("edit needs -in, -out and -log")
	}
	mix, err := parseMix(*mixStr)
	if err != nil {
		return err
	}
	fh, err := os.Open(*in)
	if err != nil {
		return err
	}
	t, err := xmlconv.Parse(fh, xmlconv.Options{})
	fh.Close()
	if err != nil {
		return err
	}
	mix.XMLSafe = true // the result must round-trip through XML
	rng := rand.New(rand.NewSource(*seed))
	_, log, err := gen.RandomScript(rng, t, *ops, mix)
	if err != nil {
		return err
	}
	if err := writeDoc(*out, t); err != nil {
		return err
	}
	// Safety net: the serialized result must parse back to the same tree,
	// or the node-id sidecar (and with it the log) would be meaningless.
	if err := verifyRoundTrip(*out, t); err != nil {
		return err
	}
	// XML does not carry node identities; persist them so that
	// `pqindex update` can match the log against the resulting document.
	idsFile, err := os.Create(*out + ".ids")
	if err != nil {
		return err
	}
	if err := xmlconv.WriteIDs(idsFile, t); err != nil {
		idsFile.Close()
		return err
	}
	if err := idsFile.Close(); err != nil {
		return err
	}
	lf, err := os.Create(*logPath)
	if err != nil {
		return err
	}
	defer lf.Close()
	if err := pqgram.WriteLog(lf, log); err != nil {
		return err
	}
	fmt.Printf("applied %d ops; wrote %s (%d nodes) and %s\n", *ops, *out, t.Size(), *logPath)
	return nil
}

func verifyRoundTrip(path string, want *tree.Tree) error {
	fh, err := os.Open(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	got, err := xmlconv.Parse(fh, xmlconv.Options{})
	if err != nil {
		return fmt.Errorf("%s does not reparse: %w", path, err)
	}
	if !tree.EqualLabels(want, got) {
		return fmt.Errorf("%s does not round-trip through XML; this is a bug in the XML-safe edit generator", path)
	}
	return nil
}

func parseMix(s string) (gen.OpMix, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return gen.OpMix{}, fmt.Errorf("mix wants three comma-separated weights, got %q", s)
	}
	var w [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return gen.OpMix{}, fmt.Errorf("bad mix weight %q", p)
		}
		w[i] = v
	}
	return gen.OpMix{Insert: w[0], Delete: w[1], Rename: w[2]}, nil
}
