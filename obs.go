package pqgram

import (
	"pqgram/internal/obs"
	"pqgram/internal/profile"
)

// Collector is the observability handle of the library: a named-metric
// registry (atomic counters, gauges, log2-bucket latency histograms with
// p50/p95/p99) plus an optional *slog.Logger event sink. Instrumentation
// is opt-in everywhere: a nil *Collector is a valid no-op, and an
// unobserved index pays one nil check per operation.
//
// Attach it with (*Forest).SetCollector or (*Store).SetCollector — the
// store variant also covers its in-memory forest — and, for profiling
// metrics (pq-grams produced per build), the process-global
// SetProfileCollector. Read it back with Collector.Snapshot, which is
// deterministic for equal metric states and JSON-ready.
type Collector = obs.Collector

// MetricsSnapshot is a point-in-time, JSON-ready view of every metric of a
// Collector.
type MetricsSnapshot = obs.Snapshot

// NewCollector creates an empty metrics collector.
func NewCollector() *Collector { return obs.NewCollector() }

// SetProfileCollector attaches (or, with nil, detaches) the process-global
// collector for profiling metrics: pq-gram bags built, grams produced, bag
// sizes and build latency. Profiling is a pure function without a receiver,
// hence the global scope; every other subsystem attaches per instance.
func SetProfileCollector(c *Collector) { profile.SetCollector(c) }
