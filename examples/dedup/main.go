// Dedup finds near-duplicate documents in a collection with approximate
// pq-gram lookups — the use case that motivates approximate matching of
// hierarchical data in the paper's introduction (duplicate detection à la
// Weis & Naumann's DogmatiX, here powered by the pq-gram index).
//
// The example builds a corpus of bibliography fragments in which some
// documents are independently authored and some are noisy copies of each
// other (reordered fields, renamed tags, missing entries), then clusters
// documents whose pairwise pq-gram distance is below a threshold.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"pqgram"
	"pqgram/internal/gen" // corpus generation only; the API under test is pqgram
)

func main() {
	originals := flag.Int("originals", 12, "number of independent documents")
	copies := flag.Int("copies", 2, "noisy copies per document")
	noise := flag.Int("noise", 8, "edit operations per noisy copy")
	tau := flag.Float64("tau", 0.5, "duplicate distance threshold")
	flag.Parse()

	p := pqgram.DefaultParams
	rng := rand.New(rand.NewSource(7))
	f := pqgram.NewForest(p)

	// Ground truth: which documents are copies of which original.
	truth := make(map[string]string)
	var ids []string
	for i := 0; i < *originals; i++ {
		orig := gen.DBLP(int64(100+i), 150+rng.Intn(150))
		origID := fmt.Sprintf("doc-%02d", i)
		if err := f.Add(origID, orig); err != nil {
			log.Fatal(err)
		}
		truth[origID] = origID
		ids = append(ids, origID)
		for c := 0; c < *copies; c++ {
			dup, _, err := gen.Perturb(rng, orig, *noise, gen.DefaultMix)
			if err != nil {
				log.Fatal(err)
			}
			dupID := fmt.Sprintf("doc-%02d-copy%d", i, c)
			if err := f.Add(dupID, dup); err != nil {
				log.Fatal(err)
			}
			truth[dupID] = origID
			ids = append(ids, dupID)
		}
	}
	sort.Strings(ids)
	fmt.Printf("corpus: %d documents (%d originals, %d copies each), threshold %.2f\n\n",
		f.Len(), *originals, *copies, *tau)

	// Cluster by single-linkage over sub-threshold pairs, using the index
	// for the candidate search instead of all-pairs distance computation.
	parent := make(map[string]string, len(ids))
	for _, id := range ids {
		parent[id] = id
	}
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b string) { parent[find(a)] = find(b) }

	// One similarity join finds every sub-threshold pair via the index;
	// disjoint documents are never even scored.
	joined := f.SimilarityJoin(*tau)
	for _, p := range joined {
		union(p.A, p.B)
	}
	pairs := len(joined)

	clusters := make(map[string][]string)
	for _, id := range ids {
		root := find(id)
		clusters[root] = append(clusters[root], id)
	}

	correct, total := 0, 0
	var roots []string
	for root := range clusters {
		roots = append(roots, root)
	}
	sort.Strings(roots)
	fmt.Println("detected duplicate clusters:")
	for _, root := range roots {
		members := clusters[root]
		if len(members) < 2 {
			continue
		}
		sort.Strings(members)
		fmt.Printf("  %v\n", members)
		// A cluster is correct if all members share the same ground truth.
		same := true
		for _, m := range members {
			if truth[m] != truth[members[0]] {
				same = false
			}
		}
		total++
		if same && len(members) == 1+*copies {
			correct++
		}
	}
	fmt.Printf("\n%d sub-threshold pairs found via the index\n", pairs)
	fmt.Printf("%d/%d clusters exactly match the ground truth\n", correct, total)
}
