// Server runs a small HTTP document-similarity service backed by an
// incrementally maintained pq-gram forest index — the deployment shape the
// paper targets: documents change through edit feeds, the index follows
// the feed, and approximate lookups stay fast because nothing is rebuilt.
//
// The entire HTTP surface — and the serving tier behind it: request
// batching, the epoch-invalidated result cache, admission control — is
// internal/serve; this example only assembles the index and walks the API.
// cmd/pqserve is the production binary over the same tier, so the demo and
// the deployed service cannot drift.
//
// Endpoints (JSON unless noted):
//
//	PUT    /docs/{id}          body: XML           index a document
//	DELETE /docs/{id}                              drop a document
//	POST   /docs/{id}/edits    {"xml","ids","log"} incremental update
//	POST   /lookup             {"xml","tau","top"} approximate lookup
//	POST   /topk               {"xml","k"}         k nearest via the metric index
//	POST   /explain            {"xml","tau","k"}   run a query traced; plan + work counters
//	GET    /stats                                  index + serving-tier statistics
//	GET    /debug/metrics                          live metrics snapshot (?format=prom for Prometheus text)
//	GET    /debug/trace[?n=16]                     most recent query traces from the ring buffer
//	GET    /debug/vars                             expvar (includes "pqgram")
//	GET    /debug/pprof/...                        CPU/heap/goroutine profiles
//
// Every request is logged (structured, via slog) with a request ID that is
// echoed back in the X-Request-ID response header; lookups additionally
// carry an X-Cache header (hit, miss or shared). Run without arguments to
// start on :8080; with -demo the process starts the server on a random
// port, exercises every endpoint with generated data, prints the results,
// and exits.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"

	"pqgram"
	"pqgram/internal/gen" // demo data generation only
	"pqgram/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	demo := flag.Bool("demo", false, "self-exercise the API and exit")
	quiet := flag.Bool("quiet", false, "suppress per-request logging")
	index := flag.String("index", "", "back the service with a persistent store at this path (journaled; survives restarts)")
	syncWrites := flag.Bool("sync", false, "with -index: fsync every journaled mutation before acknowledging it")
	segments := flag.Bool("segments", false, "with -index: create a segmented (out-of-core) store; existing indexes auto-detect their engine")
	flushEvery := flag.Int("flush-every", 4096, "with -segments: flush the memtable to a segment after this many dirty documents (0 = never automatically)")
	plan := flag.String("plan", "auto", "query planner mode: auto, exhaustive, pruned or metric")
	cache := flag.Int("cache", 1024, "result-cache capacity in entries (0 disables)")
	flag.Parse()

	planModes := map[string]pqgram.PlanMode{
		"auto": pqgram.PlanAuto, "exhaustive": pqgram.PlanExhaustive,
		"pruned": pqgram.PlanPruned, "metric": pqgram.PlanMetric,
	}
	planMode, ok := planModes[*plan]
	if !ok {
		log.Fatalf("unknown -plan %q (want auto, exhaustive, pruned or metric)", *plan)
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *quiet || *demo {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}

	// The collector observes every layer: the forest's op counters and
	// latency histograms, the serving tier, the HTTP front end, and
	// (process-globally) the profiling metrics of query-index construction.
	col := pqgram.NewCollector()
	col.SetLogger(logger)
	pqgram.SetProfileCollector(col)

	// With -index, mutations are journaled through a durable store and the
	// server answers queries from its recovered forest; without it the
	// index lives only in memory. -segments picks the out-of-core engine
	// (mutated documents spill into immutable segment files); an existing
	// index is reopened with whichever engine created it.
	var f *pqgram.Forest
	var backend serve.Backend
	switch {
	case *index != "" && (*segments || pqgram.IsSegmented(*index)):
		var st *pqgram.Segmented
		var err error
		if pqgram.IsSegmented(*index) {
			st, err = pqgram.OpenSegmented(*index)
		} else if _, serr := os.Stat(*index); serr == nil {
			log.Fatalf("index %s exists but is not segmented; drop -segments to open it", *index)
		} else {
			st, err = pqgram.CreateSegmented(*index, pqgram.DefaultParams)
		}
		if err != nil {
			log.Fatalf("opening index %s: %v", *index, err)
		}
		defer st.Close()
		st.SetSync(*syncWrites)
		st.SetFlushThreshold(*flushEvery)
		st.SetCollector(col)
		r, ss := st.Recovery(), st.Stats()
		logger.Info("index opened", "path", *index, "engine", "segmented",
			"docs", st.Forest().Len(),
			"segments", ss.Segments,
			"replayed_records", r.Records,
			"torn_bytes", r.TornBytes,
			"skipped_records", r.SkippedRecords,
			"stale_journal", r.StaleJournal)
		f = st.Forest()
		backend = st
	case *index != "":
		var st *pqgram.Store
		var err error
		if _, serr := os.Stat(*index); os.IsNotExist(serr) {
			st, err = pqgram.CreateStore(*index, pqgram.DefaultParams)
		} else {
			st, err = pqgram.OpenStore(*index)
		}
		if err != nil {
			log.Fatalf("opening index %s: %v", *index, err)
		}
		defer st.Close()
		st.SetSync(*syncWrites)
		st.SetCollector(col)
		r := st.Recovery()
		logger.Info("index opened", "path", *index,
			"docs", st.Forest().Len(),
			"replayed_records", r.Records,
			"torn_bytes", r.TornBytes,
			"skipped_records", r.SkippedRecords,
			"stale_journal", r.StaleJournal)
		f = st.Forest()
		backend = st
	default:
		f = pqgram.NewForest(pqgram.DefaultParams)
		f.SetCollector(col)
	}

	f.SetPlanMode(planMode)

	srv := serve.New(f, backend, serve.Config{CacheSize: *cache, Logger: logger}, col)
	if !*demo {
		log.Printf("pq-gram index service listening on %s", *addr)
		log.Fatal(http.ListenAndServe(*addr, srv))
	}
	// The demo showcases the metric path: /topk descends the VP-tree.
	f.SetPlanMode(pqgram.PlanMetric)
	runDemo(srv)
}

// --- demo driver ----------------------------------------------------------

func runDemo(h http.Handler) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	//pqlint:allow goroutinecheck demo server: serves until the process exits with main
	go http.Serve(ln, h)
	base := "http://" + ln.Addr().String()
	client := func(method, path string, body []byte) map[string]any {
		req, err := http.NewRequest(method, base+path, bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		var out map[string]any
		json.Unmarshal(raw, &out)
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("%s %s: %d %s", method, path, resp.StatusCode, raw)
		}
		return out
	}

	// Index three generated documents.
	rng := rand.New(rand.NewSource(1))
	base0 := gen.DBLP(1, 400)
	for i, doc := range []*pqgram.Tree{base0, mustPerturb(rng, base0, 6), gen.DBLP(9, 400)} {
		xml, err := pqgram.WriteXMLString(doc)
		if err != nil {
			log.Fatal(err)
		}
		out := client("PUT", fmt.Sprintf("/docs/doc-%d", i), []byte(xml))
		fmt.Printf("indexed doc-%d: %v nodes, %v pq-grams\n", i, out["nodes"], out["pqgrams"])
	}

	// Edit doc-0 through the feed endpoint: serialize the edited state,
	// its identities and the log.
	working, err := pqgram.ParseXMLString(mustXML(base0))
	if err != nil {
		log.Fatal(err)
	}
	var lines []string
	for _, op := range []pqgram.Op{pqgram.Rename(3, "@key=renamed/0"), pqgram.Delete(5)} {
		inv, err := op.Apply(working)
		if err != nil {
			log.Fatal(err)
		}
		lines = append(lines, inv.String())
	}
	body, _ := json.Marshal(serve.EditsRequest{
		XML: mustXML(working),
		IDs: working.PreorderIDs(),
		Log: lines,
	})
	out := client("POST", "/docs/doc-0/edits", body)
	fmt.Printf("updated doc-0 incrementally: +%v −%v pq-grams in %vµs\n",
		out["added"], out["removed"], out["micros"])

	// Look up a noisy copy of doc-0 — twice, to show the result cache:
	// the repeat answers from the cache without touching the postings.
	query := mustPerturb(rng, working, 4)
	lb, _ := json.Marshal(serve.LookupRequest{XML: mustXML(query), Top: 3})
	var matches []pqgram.Match
	var xCache []string
	for i := 0; i < 2; i++ {
		req, _ := http.NewRequest("POST", base+"/lookup", bytes.NewReader(lb))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		matches = nil
		json.NewDecoder(resp.Body).Decode(&matches)
		resp.Body.Close()
		xCache = append(xCache, resp.Header.Get("X-Cache"))
	}
	fmt.Printf("nearest documents to the noisy copy of doc-0 (X-Cache: %s):\n",
		strings.Join(xCache, " then "))
	for _, m := range matches {
		fmt.Printf("  %-8s %.3f\n", m.TreeID, m.Distance)
	}

	// Ask the metric endpoint for the two nearest neighbours; the demo
	// forest runs in metric mode, so this descends the VP-tree.
	tb, _ := json.Marshal(serve.TopKRequest{XML: mustXML(query), K: 2})
	tout := client("POST", "/topk", tb)
	fmt.Printf("top-%v via /topk (metric index built: %v):\n", tout["k"], tout["metric"])
	if ms, ok := tout["matches"].([]any); ok {
		for _, m := range ms {
			if mm, ok := m.(map[string]any); ok {
				fmt.Printf("  %-8s %.3f\n", mm["TreeID"], mm["Distance"])
			}
		}
	}

	// Explain the same query: which plan ran and how much work each stage
	// did. The trace lands in the ring buffer, correlated by request ID.
	eb, _ := json.Marshal(serve.ExplainRequest{XML: mustXML(query), K: 2})
	eout := client("POST", "/explain", eb)
	if ex, ok := eout["explain"].(map[string]any); ok {
		fmt.Printf("explain (id %v): op=%v plan=%v\n", eout["id"], ex["op"], ex["plan"])
	}
	tresp, err := http.Get(base + "/debug/trace?n=4")
	if err != nil {
		log.Fatal(err)
	}
	var ring []pqgram.TraceSnapshot
	json.NewDecoder(tresp.Body).Decode(&ring)
	tresp.Body.Close()
	if len(ring) > 0 {
		fmt.Printf("trace ring holds %d recent traces, newest %q (id %v)\n",
			len(ring), ring[0].Root.Name, ring[0].ID)
	}

	stats := client("GET", "/stats", nil)
	fmt.Printf("stats: %v docs, %v pq-grams (p=%v q=%v)\n",
		stats["docs"], stats["pqgrams"], stats["p"], stats["q"])

	// The instrumentation saw all of the above: print a few live counters
	// from the metrics endpoint, including the serving tier's.
	metrics := client("GET", "/debug/metrics", nil)
	if counters, ok := metrics["counters"].(map[string]any); ok {
		fmt.Printf("metrics: %v lookups, %v updates, %v puts, %v http requests\n",
			counters["forest_lookups"], counters["forest_updates"],
			counters["forest_puts"], counters["http_requests"])
		fmt.Printf("serving tier: %v served, %v cache hits, %v misses\n",
			counters["serve_requests"], counters["serve_cache_hit"],
			counters["serve_cache_miss"])
	}
	if hists, ok := metrics["histograms"].(map[string]any); ok {
		if h, ok := hists["forest_lookup_ns"].(map[string]any); ok {
			fmt.Printf("lookup latency: p50=%vns p99=%vns\n", h["p50"], h["p99"])
		}
	}
	presp, err := http.Get(base + "/debug/metrics?format=prom")
	if err != nil {
		log.Fatal(err)
	}
	prom, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	fmt.Printf("prometheus exposition: %d bytes, %d families\n",
		len(prom), bytes.Count(prom, []byte("# TYPE")))
}

func mustXML(t *pqgram.Tree) string {
	s, err := pqgram.WriteXMLString(t)
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func mustPerturb(rng *rand.Rand, t *pqgram.Tree, n int) *pqgram.Tree {
	mix := gen.XMLSafeMix
	out, _, err := gen.Perturb(rng, t, n, mix)
	if err != nil {
		log.Fatal(err)
	}
	return out
}
