// Server runs a small HTTP document-similarity service backed by an
// incrementally maintained pq-gram forest index — the deployment shape the
// paper targets: documents change through edit feeds, the index follows
// the feed, and approximate lookups stay fast because nothing is rebuilt.
//
// Endpoints (JSON unless noted):
//
//	PUT    /docs/{id}          body: XML           index a document
//	DELETE /docs/{id}                              drop a document
//	POST   /docs/{id}/edits    {"xml","ids","log"} incremental update
//	POST   /lookup             {"xml","tau","top"} approximate lookup
//	POST   /topk               {"xml","k"}         k nearest via the metric index
//	POST   /explain            {"xml","tau","k"}   run a query traced; plan + work counters
//	GET    /stats                                  index statistics
//	GET    /debug/metrics                          live metrics snapshot (?format=prom for Prometheus text)
//	GET    /debug/trace[?n=16]                     most recent query traces from the ring buffer
//	GET    /debug/vars                             expvar (includes "pqgram")
//	GET    /debug/pprof/...                        CPU/heap/goroutine profiles
//
// Every request is logged (structured, via slog) with a request ID that is
// echoed back in the X-Request-ID response header; /explain attaches the
// same ID to the trace it publishes, so log lines and /debug/trace entries
// correlate. A tracer (deterministic every-Nth sampling, bounded ring
// buffer) is attached at startup, so a sample of ordinary /lookup and
// /topk traffic shows up in /debug/trace too. Run without arguments to
// start on :8080; with -demo the process starts the server on a random
// port, exercises every endpoint with generated data, prints the results,
// and exits.
package main

import (
	"bytes"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pqgram"
	"pqgram/internal/gen" // demo data generation only
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	demo := flag.Bool("demo", false, "self-exercise the API and exit")
	quiet := flag.Bool("quiet", false, "suppress per-request logging")
	index := flag.String("index", "", "back the service with a persistent store at this path (journaled; survives restarts)")
	syncWrites := flag.Bool("sync", false, "with -index: fsync every journaled mutation before acknowledging it")
	plan := flag.String("plan", "auto", "query planner mode: auto, exhaustive, pruned or metric")
	flag.Parse()

	planModes := map[string]pqgram.PlanMode{
		"auto": pqgram.PlanAuto, "exhaustive": pqgram.PlanExhaustive,
		"pruned": pqgram.PlanPruned, "metric": pqgram.PlanMetric,
	}
	planMode, ok := planModes[*plan]
	if !ok {
		log.Fatalf("unknown -plan %q (want auto, exhaustive, pruned or metric)", *plan)
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *quiet || *demo {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}

	// The collector observes every layer: the forest's op counters and
	// latency histograms, the HTTP front end, and (process-globally) the
	// profiling metrics of query-index construction.
	col := pqgram.NewCollector()
	col.SetLogger(logger)
	pqgram.SetProfileCollector(col)

	// With -index, mutations are journaled through a durable store and the
	// server answers queries from its recovered forest; without it the
	// index lives only in memory.
	var f *pqgram.Forest
	var st *pqgram.Store
	if *index != "" {
		var err error
		if _, serr := os.Stat(*index); os.IsNotExist(serr) {
			st, err = pqgram.CreateStore(*index, pqgram.DefaultParams)
		} else {
			st, err = pqgram.OpenStore(*index)
		}
		if err != nil {
			log.Fatalf("opening index %s: %v", *index, err)
		}
		defer st.Close()
		st.SetSync(*syncWrites)
		st.SetCollector(col)
		r := st.Recovery()
		logger.Info("index opened", "path", *index,
			"docs", st.Forest().Len(),
			"replayed_records", r.Records,
			"torn_bytes", r.TornBytes,
			"skipped_records", r.SkippedRecords,
			"stale_journal", r.StaleJournal)
		f = st.Forest()
	} else {
		f = pqgram.NewForest(pqgram.DefaultParams)
		f.SetCollector(col)
	}

	f.SetPlanMode(planMode)

	srv := newServer(f, col, logger)
	srv.store = st
	if !*demo {
		log.Printf("pq-gram index service listening on %s", *addr)
		log.Fatal(http.ListenAndServe(*addr, srv))
	}
	// The demo showcases the metric path: /topk descends the VP-tree.
	f.SetPlanMode(pqgram.PlanMetric)
	runDemo(srv)
}

// server is the HTTP facade over a forest index. The forest is internally
// synchronized (sharded postings, per-document locks), so handlers call it
// directly: lookups run in parallel with each other and with incremental
// updates of other documents, and PUT replaces documents atomically via
// Put — no server-side locking needed.
type server struct {
	forest *pqgram.Forest
	store  *pqgram.Store // non-nil: mutations are journaled before applying
	// storeMu serializes store mutations: the forest is internally
	// synchronized, but the journal is a single append stream.
	storeMu sync.Mutex
	col     *pqgram.Collector
	logger  *slog.Logger
	mux     *http.ServeMux
	reqID   atomic.Int64
}

// expvarOnce guards the process-global expvar registration (Publish panics
// on duplicate names; tests and the demo may build several servers).
var expvarOnce sync.Once

func newServer(f *pqgram.Forest, col *pqgram.Collector, logger *slog.Logger) *server {
	s := &server{forest: f, col: col, logger: logger, mux: http.NewServeMux()}
	// Sample every 16th traceable operation into a ring of recent traces;
	// /explain traces its query unconditionally regardless of sampling.
	if col.Tracer() == nil {
		col.SetTracer(pqgram.NewTracer(16, 64))
	}
	s.mux.HandleFunc("/docs/", s.handleDocs)
	s.mux.HandleFunc("/lookup", s.handleLookup)
	s.mux.HandleFunc("/topk", s.handleTopK)
	s.mux.HandleFunc("/explain", s.handleExplain)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/debug/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/trace", s.handleTrace)
	s.mux.Handle("/debug/vars", expvar.Handler())
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	expvarOnce.Do(func() {
		expvar.Publish("pqgram", expvar.Func(func() any { return col.Snapshot() }))
	})
	return s
}

// statusWriter captures the response status and size for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// ServeHTTP is the request-logging and metrics middleware: it assigns a
// request ID (echoed as X-Request-ID), times the handler, logs one
// structured line per request, and feeds the HTTP counters/histogram.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := s.reqID.Add(1)
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	sw.Header().Set("X-Request-ID", fmt.Sprintf("req-%06d", id))
	t0 := time.Now()
	s.mux.ServeHTTP(sw, r)
	dur := time.Since(t0)
	s.col.Counter("http_requests").Inc()
	if sw.status >= 400 {
		s.col.Counter("http_errors").Inc()
	}
	s.col.Histogram("http_request_ns").Observe(dur.Nanoseconds())
	s.logger.Info("request",
		"id", id,
		"method", r.Method,
		"path", r.URL.Path,
		"status", sw.status,
		"bytes", sw.bytes,
		"dur", dur,
	)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := pqgram.WritePrometheus(w, s.col.Snapshot()); err != nil {
			s.logger.Error("prometheus exposition failed", "err", err)
		}
		return
	}
	writeJSON(w, s.col.Snapshot())
}

// handleTrace serves the tracer's ring buffer of recent traces, newest
// first. /explain traces carry the request ID of the request that ran
// them, correlating with the request log.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	n := 16
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 {
			n = v
		}
	}
	traces := s.col.Tracer().RecentTraces(n)
	if traces == nil {
		traces = []pqgram.TraceSnapshot{}
	}
	writeJSON(w, traces)
}

// explainRequest selects the query to explain: tau > 0 explains a
// threshold lookup, otherwise k (default 5) explains a top-k lookup.
type explainRequest struct {
	XML string  `json:"xml"`
	Tau float64 `json:"tau"`
	K   int     `json:"k"`
}

// handleExplain runs one query with tracing forced on and returns the
// plan decision plus the per-stage work-counter span tree. The trace is
// also published into the tracer's ring buffer tagged with this request's
// ID, so it can be retrieved again via /debug/trace and correlated with
// the request log.
func (s *server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req explainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	query, err := pqgram.ParseXMLString(req.XML)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad query document: %v", err)
		return
	}
	var res pqgram.ExplainResult
	if req.Tau > 0 {
		res = s.forest.ExplainLookup(query, req.Tau)
	} else {
		if req.K <= 0 {
			req.K = 5
		}
		res = s.forest.ExplainTopK(query, req.K)
	}
	reqID := w.Header().Get("X-Request-ID")
	s.col.Tracer().Publish(pqgram.TraceSnapshot{ID: reqID, Root: res.Trace})
	writeJSON(w, map[string]any{"id": reqID, "explain": res})
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *server) handleDocs(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/docs/")
	if rest == "" {
		httpError(w, http.StatusBadRequest, "missing document id")
		return
	}
	if id, ok := strings.CutSuffix(rest, "/edits"); ok && r.Method == http.MethodPost {
		s.handleEdits(w, r, id)
		return
	}
	id := rest
	switch r.Method {
	case http.MethodPut:
		doc, err := pqgram.ParseXML(r.Body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad document: %v", err)
			return
		}
		var grams int
		if s.store != nil {
			s.storeMu.Lock()
			grams, err = s.store.Put(id, doc)
			s.storeMu.Unlock()
			if err != nil {
				httpError(w, http.StatusInternalServerError, "persisting: %v", err)
				return
			}
		} else {
			grams = s.forest.Put(id, doc)
		}
		writeJSON(w, map[string]any{"id": id, "nodes": doc.Size(),
			"pqgrams": grams})
	case http.MethodDelete:
		var err error
		if s.store != nil {
			s.storeMu.Lock()
			err = s.store.Remove(id)
			s.storeMu.Unlock()
		} else {
			err = s.forest.Remove(id)
		}
		if err != nil {
			httpError(w, http.StatusNotFound, "%v", err)
			return
		}
		writeJSON(w, map[string]string{"removed": id})
	default:
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

// editsRequest carries the paper's maintenance inputs: the resulting
// document, its node identities, and the log of inverse edit operations.
type editsRequest struct {
	XML string          `json:"xml"`
	IDs []pqgram.NodeID `json:"ids"`
	Log []string        `json:"log"`
}

func (s *server) handleEdits(w http.ResponseWriter, r *http.Request, id string) {
	var req editsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	tn, err := pqgram.ParseXMLString(req.XML)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad document: %v", err)
		return
	}
	if len(req.IDs) > 0 {
		var sb strings.Builder
		for _, nid := range req.IDs {
			fmt.Fprintln(&sb, nid)
		}
		if err := pqgram.ApplyXMLIDs(strings.NewReader(sb.String()), tn); err != nil {
			httpError(w, http.StatusBadRequest, "bad ids: %v", err)
			return
		}
	}
	ops, err := pqgram.ReadLog(strings.NewReader(strings.Join(req.Log, "\n")))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad log: %v", err)
		return
	}
	// Vet the log before touching the index: a broken feed must not be
	// able to corrupt it.
	if _, err := pqgram.VerifyLog(tn, ops); err != nil {
		httpError(w, http.StatusUnprocessableEntity, "log does not apply: %v", err)
		return
	}
	ops = pqgram.OptimizeLog(tn, ops)

	var st pqgram.UpdateStats
	if s.store != nil {
		s.storeMu.Lock()
		st, err = s.store.Update(id, tn, ops)
		s.storeMu.Unlock()
	} else {
		st, err = s.forest.Update(id, tn, ops)
	}
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "update failed: %v", err)
		return
	}
	writeJSON(w, map[string]any{
		"id": id, "ops": len(ops),
		"added": st.PlusGrams, "removed": st.MinusGrams,
		"micros": st.Total.Microseconds(),
	})
}

type lookupRequest struct {
	XML string  `json:"xml"`
	Tau float64 `json:"tau"`
	Top int     `json:"top"`
}

func (s *server) handleLookup(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req lookupRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	query, err := pqgram.ParseXMLString(req.XML)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad query document: %v", err)
		return
	}
	var matches []pqgram.Match
	if req.Top > 0 {
		matches = s.forest.LookupTop(query, req.Top)
	} else {
		matches = s.forest.Lookup(query, req.Tau)
	}
	writeJSON(w, matches)
}

type topKRequest struct {
	XML string `json:"xml"`
	K   int    `json:"k"`
}

// handleTopK answers k-nearest-neighbour queries. The candidate strategy
// is the planner's (see -plan): in metric mode the first query builds the
// VP-tree metric index, which is then maintained incrementally by every
// mutation; the response reports whether it is built so operators can see
// which path answered.
func (s *server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req topKRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if req.K <= 0 {
		req.K = 5
	}
	query, err := pqgram.ParseXMLString(req.XML)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad query document: %v", err)
		return
	}
	matches := s.forest.LookupTopK(query, req.K)
	if matches == nil {
		matches = []pqgram.Match{}
	}
	writeJSON(w, map[string]any{
		"k":       req.K,
		"matches": matches,
		"metric":  s.forest.MetricReady(),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	pr := s.forest.Params()
	writeJSON(w, map[string]any{
		"p": pr.P, "q": pr.Q,
		"docs": s.forest.Len(), "pqgrams": s.forest.Size(),
	})
}

// --- demo driver ----------------------------------------------------------

func runDemo(h http.Handler) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, h)
	base := "http://" + ln.Addr().String()
	client := func(method, path string, body []byte) map[string]any {
		req, err := http.NewRequest(method, base+path, bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		var out map[string]any
		json.Unmarshal(raw, &out)
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("%s %s: %d %s", method, path, resp.StatusCode, raw)
		}
		return out
	}

	// Index three generated documents.
	rng := rand.New(rand.NewSource(1))
	base0 := gen.DBLP(1, 400)
	for i, doc := range []*pqgram.Tree{base0, mustPerturb(rng, base0, 6), gen.DBLP(9, 400)} {
		xml, err := pqgram.WriteXMLString(doc)
		if err != nil {
			log.Fatal(err)
		}
		out := client("PUT", fmt.Sprintf("/docs/doc-%d", i), []byte(xml))
		fmt.Printf("indexed doc-%d: %v nodes, %v pq-grams\n", i, out["nodes"], out["pqgrams"])
	}

	// Edit doc-0 through the feed endpoint: serialize the edited state,
	// its identities and the log.
	working, err := pqgram.ParseXMLString(mustXML(base0))
	if err != nil {
		log.Fatal(err)
	}
	var lines []string
	for _, op := range []pqgram.Op{pqgram.Rename(3, "@key=renamed/0"), pqgram.Delete(5)} {
		inv, err := op.Apply(working)
		if err != nil {
			log.Fatal(err)
		}
		lines = append(lines, inv.String())
	}
	body, _ := json.Marshal(editsRequest{
		XML: mustXML(working),
		IDs: working.PreorderIDs(),
		Log: lines,
	})
	out := client("POST", "/docs/doc-0/edits", body)
	fmt.Printf("updated doc-0 incrementally: +%v −%v pq-grams in %vµs\n",
		out["added"], out["removed"], out["micros"])

	// Look up a noisy copy of doc-0.
	query := mustPerturb(rng, working, 4)
	lb, _ := json.Marshal(lookupRequest{XML: mustXML(query), Top: 3})
	req, _ := http.NewRequest("POST", base+"/lookup", bytes.NewReader(lb))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	var matches []pqgram.Match
	json.NewDecoder(resp.Body).Decode(&matches)
	resp.Body.Close()
	fmt.Println("nearest documents to the noisy copy of doc-0:")
	for _, m := range matches {
		fmt.Printf("  %-8s %.3f\n", m.TreeID, m.Distance)
	}

	// Ask the metric endpoint for the two nearest neighbours; the demo
	// forest runs in metric mode, so this descends the VP-tree.
	tb, _ := json.Marshal(topKRequest{XML: mustXML(query), K: 2})
	tout := client("POST", "/topk", tb)
	fmt.Printf("top-%v via /topk (metric index built: %v):\n", tout["k"], tout["metric"])
	if ms, ok := tout["matches"].([]any); ok {
		for _, m := range ms {
			if mm, ok := m.(map[string]any); ok {
				fmt.Printf("  %-8s %.3f\n", mm["TreeID"], mm["Distance"])
			}
		}
	}

	// Explain the same query: which plan ran and how much work each stage
	// did. The trace lands in the ring buffer, correlated by request ID.
	eb, _ := json.Marshal(explainRequest{XML: mustXML(query), K: 2})
	eout := client("POST", "/explain", eb)
	if ex, ok := eout["explain"].(map[string]any); ok {
		fmt.Printf("explain (id %v): op=%v plan=%v\n", eout["id"], ex["op"], ex["plan"])
	}
	tresp, err := http.Get(base + "/debug/trace?n=4")
	if err != nil {
		log.Fatal(err)
	}
	var ring []pqgram.TraceSnapshot
	json.NewDecoder(tresp.Body).Decode(&ring)
	tresp.Body.Close()
	if len(ring) > 0 {
		fmt.Printf("trace ring holds %d recent traces, newest %q (id %v)\n",
			len(ring), ring[0].Root.Name, ring[0].ID)
	}

	stats := client("GET", "/stats", nil)
	fmt.Printf("stats: %v docs, %v pq-grams (p=%v q=%v)\n",
		stats["docs"], stats["pqgrams"], stats["p"], stats["q"])

	// The instrumentation saw all of the above: print a few live counters
	// from the metrics endpoint.
	metrics := client("GET", "/debug/metrics", nil)
	if counters, ok := metrics["counters"].(map[string]any); ok {
		fmt.Printf("metrics: %v lookups, %v updates, %v puts, %v http requests\n",
			counters["forest_lookups"], counters["forest_updates"],
			counters["forest_puts"], counters["http_requests"])
	}
	if hists, ok := metrics["histograms"].(map[string]any); ok {
		if h, ok := hists["forest_lookup_ns"].(map[string]any); ok {
			fmt.Printf("lookup latency: p50=%vns p99=%vns\n", h["p50"], h["p99"])
		}
	}
	presp, err := http.Get(base + "/debug/metrics?format=prom")
	if err != nil {
		log.Fatal(err)
	}
	prom, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	fmt.Printf("prometheus exposition: %d bytes, %d families\n",
		len(prom), bytes.Count(prom, []byte("# TYPE")))
}

func mustXML(t *pqgram.Tree) string {
	s, err := pqgram.WriteXMLString(t)
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func mustPerturb(rng *rand.Rand, t *pqgram.Tree, n int) *pqgram.Tree {
	mix := gen.XMLSafeMix
	out, _, err := gen.Perturb(rng, t, n, mix)
	if err != nil {
		log.Fatal(err)
	}
	return out
}
