// Xmldiff studies how well the pq-gram distance approximates the true tree
// edit distance (Zhang–Shasha), reproducing the premise that makes the
// pq-gram index useful: the pq-gram distance is a cheap, indexable proxy
// for an expensive exact measure.
//
// It perturbs a base document with increasing numbers of edit operations
// and reports, per edit count, the exact TED and the pq-gram distance for
// several (p,q) parameterizations — the pq-gram distance should grow
// monotonically with the amount of editing, for every parameterization.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"pqgram"
	"pqgram/internal/gen" // workload generation only
)

func main() {
	nodes := flag.Int("nodes", 120, "base document size (TED is quadratic, keep small)")
	trials := flag.Int("trials", 10, "perturbed documents per edit count")
	flag.Parse()

	params := []pqgram.Params{{P: 1, Q: 2}, {P: 2, Q: 2}, {P: 3, Q: 3}, {P: 4, Q: 4}}
	editCounts := []int{1, 2, 4, 8, 16, 32}

	base := gen.XMark(5, *nodes)
	fmt.Printf("base document: %d nodes\n\n", base.Size())
	fmt.Printf("%-8s %-10s", "edits", "TED(avg)")
	for _, p := range params {
		fmt.Printf(" dist%d,%d", p.P, p.Q)
	}
	fmt.Println()

	rng := rand.New(rand.NewSource(3))
	prev := make([]float64, len(params))
	monotone := true
	for _, k := range editCounts {
		tedSum := 0
		distSum := make([]float64, len(params))
		for t := 0; t < *trials; t++ {
			mutant, _, err := gen.Perturb(rng, base, k, gen.DefaultMix)
			if err != nil {
				log.Fatal(err)
			}
			tedSum += pqgram.TreeEditDistance(base, mutant)
			for i, p := range params {
				distSum[i] += pqgram.Distance(base, mutant, p)
			}
		}
		fmt.Printf("%-8d %-10.1f", k, float64(tedSum)/float64(*trials))
		for i := range params {
			avg := distSum[i] / float64(*trials)
			fmt.Printf(" %7.3f", avg)
			if avg < prev[i] {
				monotone = false
			}
			prev[i] = avg
		}
		fmt.Println()
	}
	fmt.Printf("\npq-gram distance grows with edit count for every (p,q): %v\n", monotone)
	fmt.Println("cost: TED is O(n²·d²) per pair; the pq-gram distance is O(n log n) and indexable")

	// --- change detection: recover a minimal edit script and use it ----
	// Two versions of a document, no edit feed: Diff recovers a minimal
	// script whose inverse log drives the incremental index maintenance.
	v2, _, err := gen.Perturb(rng, base, 6, gen.DefaultMix)
	if err != nil {
		log.Fatal(err)
	}
	v1 := base.Clone()
	index := pqgram.BuildIndex(v1, pqgram.DefaultParams)
	script, invLog, err := pqgram.Diff(v1, v2) // v1 becomes v2
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecovered minimal edit script (%d ops) between the versions:\n", len(script))
	for i, op := range script {
		if i == 6 {
			fmt.Printf("  ... %d more\n", len(script)-6)
			break
		}
		fmt.Printf("  %v\n", op)
	}
	index, err = pqgram.UpdateIndex(index, v1, invLog, pqgram.DefaultParams)
	if err != nil {
		log.Fatal(err)
	}
	ok := index.Equal(pqgram.BuildIndex(v1, pqgram.DefaultParams))
	fmt.Printf("index maintained from the recovered log matches a rebuild: %v\n", ok)
}
