// Changefeed replays the paper's application scenario (Figure 1): a large
// document evolves through a stream of edit operations, and its pq-gram
// index is maintained incrementally from the log — the old document
// versions are never reconstructed and the index is never rebuilt.
//
// The example compares, per batch of edits, the cost of the incremental
// update against the cost of rebuilding the index from scratch, and
// verifies after every batch that both agree.
//
// Flags: -nodes (document size), -batches, -ops (edits per batch).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"pqgram"
	"pqgram/internal/gen" // workload generation only; the API under test is pqgram
)

func main() {
	nodes := flag.Int("nodes", 200000, "approximate document size in nodes")
	batches := flag.Int("batches", 8, "number of edit batches")
	opsPerBatch := flag.Int("ops", 50, "edit operations per batch")
	flag.Parse()

	p := pqgram.DefaultParams
	fmt.Printf("generating XMark document with ~%d nodes...\n", *nodes)
	doc := gen.XMark(1, *nodes)

	start := time.Now()
	index := pqgram.BuildIndex(doc, p)
	buildTime := time.Since(start)
	fmt.Printf("initial index: %d pq-grams (%d distinct), built in %v\n\n",
		index.Size(), index.Distinct(), buildTime)

	rng := rand.New(rand.NewSource(2))
	fmt.Printf("%-7s %-8s %-14s %-14s %-9s %s\n",
		"batch", "edits", "incremental", "rebuild", "speedup", "verified")
	for b := 1; b <= *batches; b++ {
		// A batch of edits arrives; we receive the resulting document and
		// the log of inverse operations (here produced by the generator).
		_, invLog, err := gen.RandomScript(rng, doc, *opsPerBatch, gen.DefaultMix)
		if err != nil {
			log.Fatal(err)
		}

		t0 := time.Now()
		updated, err := pqgram.UpdateIndex(index, doc, invLog, p)
		if err != nil {
			log.Fatal(err)
		}
		incTime := time.Since(t0)

		t0 = time.Now()
		rebuilt := pqgram.BuildIndex(doc, p)
		rebuildTime := time.Since(t0)

		ok := updated.Equal(rebuilt)
		fmt.Printf("%-7d %-8d %-14v %-14v %-9.1f %v\n",
			b, *opsPerBatch, incTime, rebuildTime,
			float64(rebuildTime)/float64(incTime), ok)
		if !ok {
			log.Fatal("incremental index diverged from rebuild")
		}
		index = updated
	}
	fmt.Printf("\nfinal document: %d nodes; final index: %d pq-grams\n",
		doc.Size(), index.Size())
	fmt.Println("the incremental cost depends on the batch size, not the document size (paper, Fig. 13 right)")
}
