// Quickstart: build trees, compute pq-gram distances, maintain an index
// incrementally, and run approximate lookups over a small collection.
package main

import (
	"fmt"
	"log"

	"pqgram"
)

func main() {
	// --- Trees and distances ------------------------------------------
	// Parse XML documents into ordered labeled trees.
	orders, err := pqgram.ParseXMLString(`
		<order id="17">
			<customer>ACME Corp</customer>
			<items><item sku="A1" qty="2"/><item sku="B7" qty="1"/></items>
			<total>99.50</total>
		</order>`)
	if err != nil {
		log.Fatal(err)
	}
	similar, err := pqgram.ParseXMLString(`
		<order id="18">
			<customer>ACME Corp</customer>
			<items><item sku="A1" qty="3"/><item sku="B7" qty="1"/></items>
			<total>129.00</total>
		</order>`)
	if err != nil {
		log.Fatal(err)
	}
	unrelated, err := pqgram.ParseXMLString(`<invoice><lines/><tax/></invoice>`)
	if err != nil {
		log.Fatal(err)
	}

	p := pqgram.DefaultParams // 3,3-grams, the paper's default
	fmt.Printf("distance(order17, order18)  = %.3f\n", pqgram.Distance(orders, similar, p))
	fmt.Printf("distance(order17, invoice)  = %.3f\n", pqgram.Distance(orders, unrelated, p))

	// --- Incremental index maintenance --------------------------------
	// Index the document once...
	index := pqgram.BuildIndex(orders, p)
	fmt.Printf("indexed %d pq-grams of order17\n", index.Size())

	// ...then edit it, keeping the log of inverse operations. In a real
	// system the edits arrive from a change feed; here we apply them
	// directly. Node IDs are document order: 1=<order>, 2=@id, ...
	var invLog pqgram.Log
	for _, op := range []pqgram.Op{
		pqgram.Rename(4, "=ACME Corporation"), // fix the customer text
		pqgram.Delete(12),                     // drop the second item
	} {
		inv, err := op.Apply(orders)
		if err != nil {
			log.Fatal(err)
		}
		invLog = append(invLog, inv)
	}

	// The new index is computed from (old index, edited doc, log) — the
	// original document is no longer needed, and nothing is rebuilt.
	index, err = pqgram.UpdateIndex(index, orders, invLog, p)
	if err != nil {
		log.Fatal(err)
	}
	check := pqgram.BuildIndex(orders, p)
	fmt.Printf("incremental update matches a full rebuild: %v\n", index.Equal(check))

	// --- Approximate lookup over a collection -------------------------
	f := pqgram.NewForest(p)
	docs := map[string]string{
		"orders/17":  `<order><customer>ACME</customer><items><item/><item/></items></order>`,
		"orders/18":  `<order><customer>ACME</customer><items><item/></items></order>`,
		"orders/99":  `<order><customer>Globex</customer><items><item/><item/><item/></items></order>`,
		"invoices/3": `<invoice><lines><line/></lines><tax/></invoice>`,
	}
	for id, doc := range docs {
		t, err := pqgram.ParseXMLString(doc)
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Add(id, t); err != nil {
			log.Fatal(err)
		}
	}
	query, _ := pqgram.ParseXMLString(`<order><customer>ACME!</customer><items><item/><item/></items></order>`)
	fmt.Println("documents within distance 0.6 of the query:")
	for _, m := range f.Lookup(query, 0.6) {
		fmt.Printf("  %-12s %.3f\n", m.TreeID, m.Distance)
	}
}
