package pqgram

import (
	"io"

	"pqgram/internal/edit"
)

// Op is a single tree edit operation: INS(n, v, k, m), DEL(n) or
// REN(n, l'). Operations are applied with Apply, which also returns the
// inverse operation — collect those to build the Log that incremental
// index maintenance consumes.
type Op = edit.Op

// Script is a sequence of edit operations applied in order.
type Script = edit.Script

// Log is the sequence of inverse edit operations (ē₁, ..., ēₙ) recording
// how to transform the edited tree back to the original.
type Log = edit.Log

// Insert builds INS(n, v, k, m): a new node n with the given label becomes
// the k-th child of v and adopts v's children c_k..c_m (m = k-1 inserts a
// leaf). The node ID must be fresh: never used in the tree before, even by
// a node that was deleted since (see CheckFreshIDs).
func Insert(n NodeID, label string, v NodeID, k, m int) Op {
	return edit.Ins(n, label, v, k, m)
}

// Delete builds DEL(n): n is removed and its children are spliced into its
// position. The root cannot be deleted.
func Delete(n NodeID) Op { return edit.Del(n) }

// Rename builds REN(n, l'): the label of n becomes l'. The root cannot be
// renamed, and the label must actually change.
func Rename(n NodeID, label string) Op { return edit.Ren(n, label) }

// CheckFreshIDs verifies that a script never re-inserts a node identity
// that occurred before (in t0 or as an earlier insert). Incremental index
// maintenance requires fresh identities; a violating log fails during
// UpdateIndex, this check fails it earlier with a precise reason.
func CheckFreshIDs(t0 *Tree, s Script) error { return edit.CheckFreshIDs(t0, s) }

// VerifyLog checks that a log is a valid sequence of inverse operations
// for the tree tn and returns the reconstructed original tree. Use it to
// vet logs from untrusted feeds before UpdateIndex; it costs a tree copy
// and a replay, which UpdateIndex itself avoids.
func VerifyLog(tn *Tree, log Log) (*Tree, error) { return edit.VerifyLog(tn, log) }

// OptimizeLog returns an equivalent, possibly shorter log: rename chains
// per node collapse to at most one rename, and leaf nodes that were
// inserted and immediately deleted again disappear (the log preprocessing
// the paper's §10 proposes). tn is the tree the log belongs to; neither
// argument is modified.
func OptimizeLog(tn *Tree, log Log) Log { return edit.OptimizeLog(tn, log) }

// SubtreeDelete compiles the removal of the whole subtree rooted at n into
// a script of node operations (deleted bottom-up).
func SubtreeDelete(t *Tree, n NodeID) (Script, error) { return edit.SubtreeDelete(t, n) }

// SubtreeInsert compiles the insertion of a whole subtree as the k-th
// child of v into a script of leaf inserts (top-down). New node IDs are
// allocated from firstID; the assigned root ID is returned.
func SubtreeInsert(sub *Tree, v NodeID, k int, firstID NodeID) (Script, NodeID, error) {
	return edit.SubtreeInsert(sub, v, k, firstID)
}

// SubtreeMove compiles moving the subtree rooted at n under v at position
// k (delete bottom-up, re-insert top-down with fresh IDs from firstID).
func SubtreeMove(t *Tree, n, v NodeID, k int, firstID NodeID) (Script, NodeID, error) {
	return edit.SubtreeMove(t, n, v, k, firstID)
}

// WriteLog writes operations in the stable line-oriented text format, one
// per line (INS/DEL/REN ...). It round-trips through ReadLog.
func WriteLog(w io.Writer, ops []Op) error { return edit.WriteLog(w, ops) }

// ReadLog parses a log written by WriteLog. Blank lines and lines starting
// with '#' are ignored.
func ReadLog(r io.Reader) ([]Op, error) { return edit.ReadLog(r) }
